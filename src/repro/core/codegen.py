"""Source-codegen kernel backend: one flat Python function per plan.

The closure kernels of :mod:`repro.core.kernels` removed interpretive
dispatch from the join core, but still pay one Python *call* per plan
step per candidate (the nested-closure chain), one call per match
(``emit``) and one per-factor piece walk (``BodyValue``).  This module
is the next speed tier the ROADMAP names "kernel codegen v2": each
:class:`~repro.core.plan_ir.BodyPlanIR` is lowered to **actual Python
source** — nested ``for``/``if`` over the probe tables, unification as
tuple-index comparisons, pushdown filters and indicator brackets
inlined as native expressions over local variables, the semiring
``⊕``/``⊗`` and each mask table's ``dict.get`` bound as locals, head
keys built as tuple displays, contributions accumulated straight into
the caller's bucket, and work counters kept in local ints flushed into
:class:`~repro.core.indexes.JoinStats` once per invocation — then
``compile()``-d into one flat function.  The hot loop therefore runs
straight-line bytecode: no closure chain, no emit trampoline, no
per-factor dispatch, and (for fully guard-covered bodies) not a single
valuation-dict operation.

What stays identical to the closure backend, by construction from the
same IR:

* the plan (join order, masks, pushdown placement, fallback loop) —
  both backends compile the *same* ``BodyPlanIR``;
* index freshness — generated prologues re-resolve
  ``guards[pos].index`` per invocation, so per-iteration index
  refreshes are picked up without regenerating source;
* counter semantics — every probe/scan/prune/fallback counter is
  incremented at the same event as the interpreted and closure
  executors count it;
* value semantics — factor products fold left from ``1`` in body
  order, carried probe values serve factors exactly when the closure
  path would, and store routing (IDB → POPS EDB → Boolean embedding →
  ``⊥`` default) mirrors ``FactorEvaluator.atom_value``.

Kernels are cached in the evaluators' existing
:class:`~repro.core.kernels.KernelCache` (``kernel_cache_hits`` counts
reuse; ``JoinStats.codegen_kernels`` counts source compilations — the
pair proves each body is generated once per stratum, not per
iteration).  The generated source is retained on the kernel object
(``kernel.source``) and registered with :mod:`linecache` under the
kernel's ``filename``, so tracebacks through generated code show real
lines and a debugger can step into them; ``engine="codegen"`` on
:func:`repro.core.engine.solve` selects this backend everywhere the
closure kernels are wired (naïve, semi-naïve with all delta variants,
hybrid, grounding, every schedule).
"""

from __future__ import annotations

import itertools
import linecache
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..semirings.base import FunctionRegistry, POPS
from .ast import (
    And,
    BoolAtom,
    Compare,
    Condition,
    Constant,
    KeyFunc,
    Not,
    Or,
    Term,
    TrueCond,
    Variable,
)
from .indexes import NO_VALUE, JoinStats, KeyIndex
from .instance import Database
from .plan_ir import BodyPlanIR
from .rules import (
    Factor,
    FuncFactor,
    Indicator,
    KeyAsValue,
    RelAtom,
    SumProduct,
    ValueConst,
    factor_atoms,
)

_EMPTY_BUCKET: Tuple = ()
_MISSING = object()

#: Comparison operators of the condition language map 1:1 onto Python's
#: (``_COMPARATORS`` in :mod:`repro.core.ast` is exactly this table).
_PY_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})

_filename_counter = itertools.count()


class CodegenError(TypeError):
    """Raised when a plan node cannot be lowered to source.

    Should be unreachable for plans produced by
    :func:`repro.core.plan_ir.build_body_plan` — it exists to fail
    loudly (at generation time, never mid-fixpoint) if an invariant the
    generator relies on is broken upstream.
    """


class _Writer:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def w(self, line: str = "") -> None:
        self.lines.append("    " * self.depth + line if line else "")

    def indent(self) -> None:
        self.depth += 1

    def dedent(self) -> None:
        self.depth -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class CodegenKernel:
    """One generated, compiled join kernel.

    ``run`` is the compiled flat function; its signature depends on the
    leaf mode (see :func:`generate_rule_kernel` /
    :func:`generate_join_kernel`).  ``source`` retains the generated
    Python for debugging — it is also registered in :mod:`linecache`
    under ``filename``, so tracebacks resolve to real source lines.
    """

    __slots__ = ("run", "source", "filename")

    def __init__(self, run: Callable, source: str, filename: str):
        self.run = run
        self.source = source
        self.filename = filename

    def install_poll(self, poll: Optional[Callable]) -> None:
        """Arm the kernel with a budget poll hook.

        Wraps ``run`` so the poll fires once per invocation of the
        generated function (the codegen-path budget check); when no
        budget is armed ``run`` stays the raw compiled function with
        zero added frames.
        """
        if poll is None:
            return
        fn = self.run

        def guarded(*args, _fn=fn, _poll=poll):
            _poll()
            return _fn(*args)

        self.run = guarded

    # ------------------------------------------------------------------
    def execute(self, guards: Sequence, emit: Callable) -> int:
        """Emit-mode alias mirroring ``CompiledKernel.execute``."""
        return self.run(guards, emit)

    def matches(self, guards: Sequence) -> List[Tuple[Dict, Dict[int, Any]]]:
        """Materialized ``(valuation, slot_values)`` pairs (emit mode)."""
        out: List[Tuple[Dict, Dict[int, Any]]] = []

        def emit(valu: Dict, slots: List[Any]) -> None:
            out.append(
                (
                    dict(valu),
                    {i: v for i, v in enumerate(slots) if v is not NO_VALUE},
                )
            )

        self.run(guards, emit)
        return out


class _SourceGen:
    """Lowers one :class:`BodyPlanIR` to Python source plus an env dict.

    The env dict becomes the generated module's globals: every
    non-literal object the source references (semiring ops, store
    ``dict``s, constants, interpreted functions, sentinels) is bound to
    a fresh ``_E{n}_{hint}`` name there, so the generated code contains
    no ``repr`` round-trips and works for arbitrary key/value objects.
    """

    def __init__(
        self,
        ir: BodyPlanIR,
        fallback_domain: Sequence[Any],
        bool_lookup: Callable[[str, Tuple], bool],
        stats: Optional[JoinStats],
        emit_mode: bool,
        body: Optional[SumProduct] = None,
        head_args: Tuple[Term, ...] = (),
        pops: Optional[POPS] = None,
        database: Optional[Database] = None,
        functions: Optional[FunctionRegistry] = None,
        idb_names: FrozenSet[str] = frozenset(),
        carried_slots: FrozenSet[int] = frozenset(),
        variant: Optional[Tuple[Sequence[int], int]] = None,
    ):
        if any(step.checks for step in ir.steps):
            raise CodegenError(
                "plans carrying runtime base-valuation checks (legacy "
                "JoinPlan lowering) have no generated-source pipeline"
            )
        self.ir = ir
        self.domain = tuple(fallback_domain)
        self.bool_lookup = bool_lookup
        self.stats = stats
        self.emit_mode = emit_mode
        self.body = body
        self.head_args = head_args
        self.pops = pops
        self.database = database
        self.functions = functions
        self.idb_names = idb_names
        self.carried_slots = carried_slots
        self.variant = variant
        # Mirror the closure backend: any fallback binding needs the
        # domain membership check, so the set is materialized for it.
        self.needs_domain_set = ir.needs_domain_set or any(
            fb.binding is not None for fb in ir.fallback
        )

        self.env: Dict[str, Any] = {}
        self._env_names: Dict[int, str] = {}
        self._env_n = 0
        self._locals: Dict[str, str] = {}
        self._local_n = 0
        self._bound: set = set()
        self.w = _Writer()

    # ------------------------------------------------------------------
    # Environment and name management
    # ------------------------------------------------------------------
    def ref(self, obj: Any, hint: str = "o") -> str:
        """Bind ``obj`` into the generated module's globals, once."""
        name = self._env_names.get(id(obj))
        # The env dict keeps every referenced object alive, so a live
        # id() can only ever name the object it was registered for.
        if name is not None:
            return name
        self._env_n += 1
        safe = "".join(ch if ch.isalnum() else "_" for ch in hint)[:12]
        name = f"_E{self._env_n}_{safe}"
        self._env_names[id(obj)] = name
        self.env[name] = obj
        return name

    def bind_local(self, var: str) -> str:
        """The Python local carrying ``var``, registering the binding."""
        name = self._locals.get(var)
        if name is None:
            self._local_n += 1
            safe = "".join(ch if ch.isalnum() else "_" for ch in var)[:20]
            name = f"v{self._local_n}_{safe}"
            self._locals[var] = name
        self._bound.add(var)
        return name

    def read_local(self, var: str) -> str:
        if var not in self._bound:
            raise CodegenError(
                f"variable {var!r} read before any plan step binds it"
            )
        return self._locals[var]

    # ------------------------------------------------------------------
    # Expression lowering: terms, conditions, factors
    # ------------------------------------------------------------------
    def term_expr(self, term: Term) -> str:
        if isinstance(term, Variable):
            return self.read_local(term.name)
        if isinstance(term, Constant):
            return self.ref(term.value, "c")
        if isinstance(term, KeyFunc):
            fn = self.ref(term.fn, f"kf_{term.name}")
            args = ", ".join(self.term_expr(a) for a in term.args)
            return f"{fn}({args})"
        raise CodegenError(f"unknown term {term!r}")

    def key_expr(self, args: Sequence[Term]) -> str:
        if not args:
            return "()"
        inner = ", ".join(self.term_expr(a) for a in args)
        return f"({inner},)" if len(args) == 1 else f"({inner})"

    def cond_expr(self, cond: Condition) -> Optional[str]:
        """Lower ``Φ`` to a native expression; ``None`` = trivially true.

        Mirrors :func:`repro.core.kernels.compile_condition` exactly,
        including the trivially-true ``Or``-disjunct collapse.
        """
        if isinstance(cond, TrueCond):
            return None
        if isinstance(cond, Compare):
            if cond.op not in _PY_OPS:  # pragma: no cover - parser gates
                raise CodegenError(f"unknown comparison {cond.op!r}")
            return (
                f"({self.term_expr(cond.left)} {cond.op} "
                f"{self.term_expr(cond.right)})"
            )
        if isinstance(cond, BoolAtom):
            lookup = self.ref(self.bool_lookup, "bl")
            rel = self.ref(cond.relation, f"r_{cond.relation}")
            return f"{lookup}({rel}, {self.key_expr(cond.args)})"
        if isinstance(cond, Not):
            inner = self.cond_expr(cond.inner)
            return "False" if inner is None else f"(not {inner})"
        if isinstance(cond, (And, Or)):
            parts = [self.cond_expr(p) for p in cond.parts]
            live = [p for p in parts if p is not None]
            if isinstance(cond, And):
                if not live:
                    return None
                return "(" + " and ".join(live) + ")"
            if len(live) < len(parts):
                return None  # a trivially-true disjunct makes the Or true
            return "(" + " or ".join(live) + ")"
        raise CodegenError(f"unknown condition node {cond!r}")

    def factor_expr(self, slot: int, factor: Factor) -> Tuple[str, int]:
        """Lower one body factor to ``(expression, store lookups paid)``.

        Store routing mirrors ``kernels._compile_factor`` (and through
        it ``FactorEvaluator.atom_value``); under a semi-naïve variant,
        occurrence factors read the store Eq. 64 assigns their rank
        (``state[0]``/``state[1]``/``state[2]`` = new/delta/old) and
        every other factor gets EDB semantics.
        """
        if isinstance(factor, RelAtom):
            return self._atom_expr(slot, factor)
        if isinstance(factor, ValueConst):
            return self.ref(factor.value, "vc"), 0
        if isinstance(factor, Indicator):
            true_value = (
                factor.true_value
                if factor.true_value is not None
                else self.pops.one
            )
            false_value = (
                factor.false_value
                if factor.false_value is not None
                else self.pops.zero
            )
            cond = self.cond_expr(factor.condition)
            tv = self.ref(true_value, "tv")
            if cond is None:
                return tv, 0
            return f"({tv} if {cond} else {self.ref(false_value, 'fv')})", 0
        if isinstance(factor, FuncFactor):
            fn = self.ref(self.functions.resolve(factor.name), f"fn_{factor.name}")
            pieces = [self.factor_expr(-1, sub) for sub in factor.args]
            args = ", ".join(expr for expr, _ in pieces)
            lookups = sum(1 for _atom in factor_atoms(factor))
            return f"{fn}({args})", lookups
        if isinstance(factor, KeyAsValue):
            expr = self.term_expr(factor.term)
            if factor.convert is None:
                return expr, 0
            conv = self.ref(self.functions.resolve(factor.convert), "conv")
            return f"{conv}({expr})", 0
        raise CodegenError(f"unknown factor {factor!r}")

    def _atom_expr(self, slot: int, factor: RelAtom) -> Tuple[str, int]:
        relation = factor.relation
        rel = self.ref(relation, f"r_{relation}")
        key = self.key_expr(factor.args)
        if self.variant is not None:
            idb_positions, j = self.variant
            if slot in idb_positions:
                rank = list(idb_positions).index(slot)
                store_pos = 0 if rank < j else (1 if rank == j else 2)
                self._variant_stores.add(store_pos)
                return f"_stg{store_pos}({rel}, {key})", 1
            # Non-occurrence atoms get EDB semantics (empty IDB), like
            # the interpreted ``_variant_value``.
            return self._edb_atom_expr(relation, rel, key)
        if relation in self.idb_names:
            return f"_ig({rel}, {key})", 1
        return self._edb_atom_expr(relation, rel, key)

    def _edb_atom_expr(
        self, relation: str, rel: str, key: str
    ) -> Tuple[str, int]:
        bottom = self.ref(self.pops.bottom, "bot")
        if relation in self.database.relations:
            get = self.ref(self.database.relations[relation].get, f"s_{relation}")
            return f"{get}({key}, {bottom})", 1
        if relation in self.database.bool_relations:
            store = self.ref(self.database.bool_relations[relation], f"b_{relation}")
            one = self.ref(self.pops.one, "one")
            zero = self.ref(self.pops.zero, "zero")
            return f"({one} if {key} in {store} else {zero})", 1
        rels = self.ref(self.database.relations, "rels")
        empty = self.ref({}, "emptyd")
        return f"{rels}.get({rel}, {empty}).get({key}, {bottom})", 1

    # ------------------------------------------------------------------
    # Statement generation
    # ------------------------------------------------------------------
    def build(self) -> str:
        w = self.w
        self._variant_stores: set = set()
        w.indent()

        self._gen_prologue()

        guarded = bool(self.ir.initial_bindings or self.ir.prefix_filters)
        if guarded:
            w.w("_ok = True")
            self._gen_initial_bindings()
            self._gen_prefix_filters()
            w.w("if _ok:")
            w.indent()
        self._gen_steps(0)
        if guarded:
            w.dedent()

        self._gen_flush()
        w.w("return _n")
        w.dedent()
        # The signature is assembled last: every env object becomes a
        # keyword-only default, so the hot loop reads them as function
        # locals (LOAD_FAST) instead of module globals.
        params = "guards, emit" if self.emit_mode else "guards, state, bucket"
        defaults = ", ".join(f"{name}={name}" for name in self.env)
        if defaults:
            signature = f"def _kernel({params}, *, {defaults}):"
        else:
            signature = f"def _kernel({params}):"
        source = signature + "\n" + w.source()
        # The variant-store prologue lines were reserved up front; fill
        # them in now that factor lowering knows which stores are read.
        return source.replace("#__VARIANT_STORES__", self._variant_store_lines())

    def _variant_store_lines(self) -> str:
        if self.variant is None or not self._variant_stores:
            return "pass"
        return "; ".join(
            f"_stg{p} = state[{p}].get" for p in sorted(self._variant_stores)
        )

    def _gen_prologue(self) -> None:
        w = self.w
        ki = self.ref(KeyIndex, "KI")
        stats = self.ref(self.stats, "ST") if self.stats is not None else None
        w.w("_n = 0")
        w.w(
            "_c_probes = _c_probed = _c_scans = _c_scanned = _c_arity = 0"
        )
        w.w("_c_prunes = _c_fb = _c_fbe = _c_eq = _c_hits = _c_lookups = 0")
        # Per-invocation index resolution: guards may have been
        # refreshed since the last call, so nothing index-shaped is
        # baked into the env (exactly the closure kernels' contract).
        for i, step in enumerate(self.ir.steps):
            w.w(f"_g{i} = guards[{step.guard_pos}].index")
            w.w(f"if _g{i} is None:")
            w.indent()
            if stats is not None:
                w.w(f"_g{i} = {ki}(guards[{step.guard_pos}].keys(), stats={stats})")
            else:
                w.w(f"_g{i} = {ki}(guards[{step.guard_pos}].keys())")
            w.dedent()
            if step.mask:
                w.w(f"_t{i} = _g{i}.mask_table({step.mask!r}).get")
            else:
                w.w(f"_s{i} = _g{i}.entries()")
        if self.emit_mode:
            noval = self.ref(NO_VALUE, "NOVAL")
            w.w("_valu = {}")
            w.w(f"_slots = [{noval}] * {self.ir.n_slots}")
        else:
            if self.variant is None:
                w.w("_ig = state.get")
            else:
                w.w("#__VARIANT_STORES__")
            w.w("_bget = bucket.get")
            noval = self.ref(NO_VALUE, "NOVAL")
            for slot in sorted(self.carried_slots):
                w.w(f"_val{slot} = {noval}")

    def _gen_initial_bindings(self) -> None:
        w = self.w
        for var, term, check in self.ir.initial_bindings:
            w.w("if _ok:")
            w.indent()
            expr = self.term_expr(term)  # may only read earlier bindings
            local = self.bind_local(var)
            w.w(f"{local} = {expr}")
            w.w("_c_eq += 1")
            if self.emit_mode:
                w.w(f"_valu[{var!r}] = {local}")
            if check and self.needs_domain_set:
                domset = self.ref(frozenset(self.domain), "domset")
                w.w(f"if {local} not in {domset}:")
                w.indent()
                w.w("_ok = False")
                w.dedent()
            w.dedent()

    def _gen_prefix_filters(self) -> None:
        w = self.w
        for cond in self.ir.prefix_filters:
            expr = self.cond_expr(cond)
            if expr is None:
                continue
            w.w(f"if _ok and not {expr}:")
            w.indent()
            w.w("_c_prunes += 1")
            w.w("_ok = False")
            w.dedent()

    def _gen_steps(self, i: int) -> None:
        w = self.w
        if i == len(self.ir.steps):
            self._gen_fallback(0)
            return
        step = self.ir.steps[i]
        if step.mask:
            empty = self.ref(_EMPTY_BUCKET, "EB")
            w.w(f"_f{i} = _t{i}({self.key_expr(step.probe_args)}, {empty})")
            w.w("_c_probes += 1")
            w.w(f"_c_probed += len(_f{i})")
            w.w(f"for _e{i} in _f{i}:")
        else:
            w.w("_c_scans += 1")
            w.w(f"_c_scanned += len(_s{i})")
            w.w(f"for _e{i} in _s{i}:")
        w.indent()
        w.w(f"_k{i} = _e{i}[0]")
        w.w(f"if len(_k{i}) != {step.arity}:")
        w.indent()
        w.w("_c_arity += 1")
        w.w("continue")
        w.dedent()
        for pos, first in step.dups:
            w.w(f"if _k{i}[{pos}] != _k{i}[{first}]:")
            w.indent()
            w.w("continue")
            w.dedent()
        for pos, name in step.binds:
            local = self.bind_local(name)
            w.w(f"{local} = _k{i}[{pos}]")
            if self.emit_mode:
                w.w(f"_valu[{name!r}] = {local}")
        for cond in step.filters:
            expr = self.cond_expr(cond)
            if expr is None:
                continue
            w.w(f"if not {expr}:")
            w.indent()
            w.w("_c_prunes += 1")
            w.w("continue")
            w.dedent()
        if step.slot is not None:
            if self.emit_mode:
                w.w(f"_slots[{step.slot}] = _e{i}[1]")
            elif step.slot in self.carried_slots:
                w.w(f"_val{step.slot} = _e{i}[1]")
        self._gen_steps(i + 1)
        w.dedent()

    def _gen_fallback(self, depth: int) -> None:
        w = self.w
        if depth == len(self.ir.fallback):
            self._gen_residual_and_leaf()
            return
        step = self.ir.fallback[depth]
        counter = "_c_fb" if depth == len(self.ir.fallback) - 1 else "_c_fbe"
        if step.binding is None:
            domain = self.ref(self.domain, "dom")
            local = self.bind_local(step.var)
            w.w(f"for {local} in {domain}:")
            w.indent()
            if self.emit_mode:
                w.w(f"_valu[{step.var!r}] = {local}")
            w.w(f"{counter} += 1")
            for cond in step.filters:
                expr = self.cond_expr(cond)
                if expr is None:
                    continue
                w.w(f"if not {expr}:")
                w.indent()
                w.w("_c_prunes += 1")
                w.w("continue")
                w.dedent()
            self._gen_fallback(depth + 1)
            w.dedent()
            return
        # Equality binding: one candidate, domain-membership-checked.
        expr = self.term_expr(step.binding)
        local = self.bind_local(step.var)
        w.w(f"{local} = {expr}")
        w.w("_c_eq += 1")
        domset = self.ref(frozenset(self.domain), "domset")
        w.w(f"if {local} in {domset}:")
        w.indent()
        if self.emit_mode:
            w.w(f"_valu[{step.var!r}] = {local}")
        w.w(f"{counter} += 1")
        self._gen_filter_chain(
            step.filters, lambda: self._gen_fallback(depth + 1)
        )
        w.dedent()

    def _gen_filter_chain(
        self, conditions: Sequence[Condition], inner: Callable[[], None]
    ) -> None:
        """``if/elif/else`` pruning chain for non-loop contexts.

        The first failing filter counts one prune and skips the inner
        block — the same event order as the loop-context ``continue``
        chains, just without a loop to continue.
        """
        w = self.w
        exprs = [
            e
            for e in (self.cond_expr(c) for c in conditions)
            if e is not None
        ]
        if not exprs:
            inner()
            return
        w.w(f"if not {exprs[0]}:")
        w.indent()
        w.w("_c_prunes += 1")
        w.dedent()
        for expr in exprs[1:]:
            w.w(f"elif not {expr}:")
            w.indent()
            w.w("_c_prunes += 1")
            w.dedent()
        w.w("else:")
        w.indent()
        inner()
        w.dedent()

    def _gen_residual_and_leaf(self) -> None:
        self._gen_filter_chain(self.ir.residual, self._gen_leaf)

    def _gen_leaf(self) -> None:
        w = self.w
        w.w("_n += 1")
        if self.emit_mode:
            w.w("emit(_valu, _slots)")
            return
        noval = self.ref(NO_VALUE, "NOVAL")
        names: List[str] = []
        for slot, factor in enumerate(self.body.factors):
            expr, lookups = self.factor_expr(slot, factor)
            name = f"_v{slot}"
            if slot in self.carried_slots:
                w.w(f"{name} = _val{slot}")
                w.w(f"if {name} is {noval}:")
                w.indent()
                if lookups:
                    w.w(f"_c_lookups += {lookups}")
                w.w(f"{name} = {expr}")
                w.dedent()
                w.w("else:")
                w.indent()
                w.w("_c_hits += 1")
                w.dedent()
            else:
                if lookups:
                    w.w(f"_c_lookups += {lookups}")
                w.w(f"{name} = {expr}")
            names.append(name)
        one = self.ref(self.pops.one, "one")
        mul = self.ref(self.pops.mul, "mul")
        add = self.ref(self.pops.add, "add")
        miss = self.ref(_MISSING, "MISS")
        # Fold left from 1 in body order — the exact BodyValue fold.
        w.w(f"_acc = {one}")
        for name in names:
            w.w(f"_acc = {mul}(_acc, {name})")
        w.w(f"_hk = {self.key_expr(self.head_args)}")
        w.w(f"_prev = _bget(_hk, {miss})")
        w.w(f"bucket[_hk] = _acc if _prev is {miss} else {add}(_prev, _acc)")

    def _gen_flush(self) -> None:
        w = self.w
        if self.stats is None:
            return
        stats = self.ref(self.stats, "ST")
        w.w(f"{stats}.probes += _c_probes")
        w.w(f"{stats}.probed_keys += _c_probed")
        w.w(f"{stats}.scans += _c_scans")
        w.w(f"{stats}.scanned_keys += _c_scanned")
        w.w(f"{stats}.arity_skips += _c_arity")
        w.w(f"{stats}.pushdown_prunes += _c_prunes")
        w.w(f"{stats}.fallback_candidates += _c_fb")
        w.w(f"{stats}.fallback_extensions += _c_fbe")
        w.w(f"{stats}.equality_bindings += _c_eq")
        w.w(f"{stats}.value_probe_hits += _c_hits")
        w.w(f"{stats}.factor_lookups += _c_lookups")


#: Source text → compiled code object.  Two structurally identical
#: bodies (across evaluators, strata or whole solve() calls) generate
#: byte-identical source, so ``compile()`` — the expensive step — runs
#: once per distinct kernel shape per process; ``exec`` re-binds the
#: fresh env (stores, semiring ops) per kernel in microseconds.
_CODE_CACHE: Dict[str, Any] = {}


def _finalize(gen: _SourceGen, label: str) -> CodegenKernel:
    source = gen.build()
    code = _CODE_CACHE.get(source)
    if code is None:
        filename = f"<datalogo-codegen-{next(_filename_counter)}:{label}>"
        code = compile(source, filename, "exec")
        _CODE_CACHE[source] = code
        # Tracebacks and debuggers resolve generated lines through
        # linecache; the kernel also keeps the source for dumping.
        linecache.cache[filename] = (
            len(source),
            None,
            source.splitlines(True),
            filename,
        )
    namespace = dict(gen.env)
    exec(code, namespace)
    if gen.stats is not None:
        gen.stats.codegen_kernels += 1
    return CodegenKernel(namespace["_kernel"], source, code.co_filename)


def generate_rule_kernel(
    ir: BodyPlanIR,
    body: SumProduct,
    head_args: Tuple[Term, ...],
    pops: POPS,
    database: Database,
    functions: FunctionRegistry,
    idb_names: FrozenSet[str],
    bool_lookup: Callable[[str, Tuple], bool],
    carried_slots: FrozenSet[int],
    fallback_domain: Sequence[Any],
    stats: Optional[JoinStats] = None,
    variant: Optional[Tuple[Sequence[int], int]] = None,
    label: str = "rule",
) -> CodegenKernel:
    """Generate the accumulate-mode kernel of one rule body.

    The compiled function has signature ``run(guards, state, bucket)``
    and returns the match count: ``state`` is the current IDB
    :class:`~repro.core.instance.Instance` (or, when ``variant`` gives
    a semi-naïve occurrence assignment ``(idb_positions, j)``, the
    ``(new, delta, old)`` store triple), and every match's ⊗-product is
    ⊕-accumulated into ``bucket`` under its head key — join, factor
    evaluation, head extraction and accumulation all in one flat
    function, no per-match callback.
    """
    gen = _SourceGen(
        ir,
        fallback_domain,
        bool_lookup,
        stats,
        emit_mode=False,
        body=body,
        head_args=head_args,
        pops=pops,
        database=database,
        functions=functions,
        idb_names=idb_names,
        carried_slots=carried_slots,
        variant=variant,
    )
    return _finalize(gen, label)


def generate_join_kernel(
    ir: BodyPlanIR,
    bool_lookup: Callable[[str, Tuple], bool],
    fallback_domain: Sequence[Any],
    stats: Optional[JoinStats] = None,
    label: str = "join",
) -> CodegenKernel:
    """Generate an emit-mode kernel: flat loops, per-match callback.

    ``run(guards, emit)`` streams every satisfying valuation into
    ``emit(valuation, slots)`` exactly like
    :meth:`repro.core.kernels.CompiledKernel.execute` — the valuation
    dict and slot list are owned by the kernel and reused, so consumers
    must copy what they retain.  Used by grounding (whose leaf builds
    provenance monomials, not semiring products) and as the
    ``matches()`` shim for tests.
    """
    gen = _SourceGen(
        ir, fallback_domain, bool_lookup, stats, emit_mode=True
    )
    return _finalize(gen, label)
