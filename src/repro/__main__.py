"""``python -m repro`` — the datalog° command-line interface."""

import sys

from .cli import main

sys.exit(main())
