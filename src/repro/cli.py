"""Command-line interface: run datalog° programs from files.

Usage::

    python -m repro run PROGRAM.dl --pops trop --edb data.json [--method naive]
    python -m repro classify PROGRAM.dl --pops trop --edb data.json
    python -m repro pops-list

The EDB file is JSON::

    {
      "relations":      {"E": [[["a", "b"], 1.0], [["b", "c"], 3.0]]},
      "bool_relations": {"Src": [["a"]]}
    }

— each POPS relation is a list of ``[key_tuple, value]`` pairs, each
Boolean relation a list of key tuples.  Values are passed to the chosen
value space verbatim (numbers for ``trop``/``nat``/…, booleans for
``bool``); for ``tropp:K`` a plain number is lifted to a singleton bag.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, Optional

from . import analysis, semirings
from .core import (
    VALID_ENGINES,
    VALID_SCHEDULES,
    BudgetExceeded,
    Database,
    parse_program,
    solve,
)
from .semirings import POPS


def _tropp(spec: str) -> POPS:
    p = int(spec.split(":", 1)[1])
    return semirings.TropicalPSemiring(p)


def _tropeta(spec: str) -> POPS:
    eta = float(spec.split(":", 1)[1])
    return semirings.TropicalEtaSemiring(eta)


#: name (or prefixed family) → POPS factory.
POPS_FACTORIES: Dict[str, Callable[[str], POPS]] = {
    "bool": lambda _s: semirings.BOOL,
    "nat": lambda _s: semirings.NAT,
    "natinf": lambda _s: semirings.NAT_INF,
    "realplus": lambda _s: semirings.REAL_PLUS,
    "trop": lambda _s: semirings.TROP,
    "bottleneck": lambda _s: semirings.BOTTLENECK,
    "viterbi": lambda _s: semirings.VITERBI,
    "tropnat": lambda _s: semirings.TROP_NAT,
    "lifted-real": lambda _s: semirings.LIFTED_REAL,
    "lifted-nat": lambda _s: semirings.LIFTED_NAT,
    "three": lambda _s: semirings.THREE,
    "tropp": _tropp,
    "tropeta": _tropeta,
}


def resolve_pops(spec: str) -> POPS:
    """Resolve a ``--pops`` spec like ``trop`` or ``tropp:2``."""
    family = spec.split(":", 1)[0]
    factory = POPS_FACTORIES.get(family)
    if factory is None:
        known = ", ".join(sorted(POPS_FACTORIES))
        raise SystemExit(f"unknown value space {spec!r}; known: {known}")
    return factory(spec)


def _lift_value(pops: POPS, value: Any) -> Any:
    """Coerce a JSON value into the chosen value space."""
    if isinstance(pops, semirings.TropicalPSemiring) and isinstance(
        value, (int, float)
    ):
        return pops.singleton(float(value))
    if isinstance(pops, semirings.TropicalEtaSemiring) and isinstance(
        value, (int, float)
    ):
        return pops.singleton(float(value))
    return value


def load_database(path: str, pops: POPS) -> Database:
    """Load the JSON EDB format described in the module docstring."""
    with open(path) as f:
        payload = json.load(f)
    relations = {
        rel: {
            tuple(key): _lift_value(pops, value)
            for key, value in entries
        }
        for rel, entries in payload.get("relations", {}).items()
    }
    bool_relations = {
        rel: {tuple(key) for key in keys}
        for rel, keys in payload.get("bool_relations", {}).items()
    }
    return Database(
        pops=pops, relations=relations, bool_relations=bool_relations
    )


def _format_value(value: Any) -> str:
    if value is semirings.BOTTOM:
        return "⊥"
    return repr(value)


def _print_facts(instance) -> None:
    for rel in sorted(instance.relations()):
        for key in sorted(instance.support(rel), key=repr):
            value = instance.get(rel, key)
            key_text = ", ".join(str(k) for k in key)
            print(f"{rel}({key_text}) = {_format_value(value)}")


def _print_stats(stats: Dict[str, Any]) -> None:
    for name in sorted(stats):
        print(f"# stat {name} = {stats[name]!r}")


def _report_budget_exceeded(args: argparse.Namespace, exc: BudgetExceeded) -> int:
    """Structured degradation: verdict + the partial fixpoint prefix,
    exit code 3 (distinct from knob errors)."""
    print(
        f"# budget exceeded: {exc.resource} "
        f"(limit {exc.limit!r}, spent {exc.spent!r})"
    )
    if exc.verdict is not None:
        print(f"# pre-flight verdict: {exc.verdict.describe()}")
    partial = exc.partial
    if partial is None:
        print("# no consistent iterate completed before the budget tripped")
        return 3
    print(
        f"# partial result: last consistent prefix after "
        f"{partial.steps} steps"
    )
    _print_facts(partial.instance)
    if args.stats:
        _print_stats(partial.stats)
    return 3


def cmd_run(args: argparse.Namespace) -> int:
    pops = resolve_pops(args.pops)
    with open(args.program) as f:
        program = parse_program(f.read())
    database = load_database(args.edb, pops)
    max_iterations = args.max_iterations
    if args.budget_iterations is not None:
        max_iterations = args.budget_iterations
    try:
        result = solve(
            program,
            database,
            method=args.method,
            max_iterations=max_iterations,
            plan=args.plan,
            schedule=args.schedule,
            engine=args.engine,
            engine_workers=args.workers,
            max_wall_s=args.budget_wall_s,
            max_tuples=args.budget_tuples,
            preflight=args.preflight,
            query=args.query,
        )
    except BudgetExceeded as exc:
        return _report_budget_exceeded(args, exc)
    except ValueError as exc:
        # Knob conflicts (e.g. --plan naive --engine codegen) surface
        # as engine-layer ValueErrors; report them CLI-style.
        raise SystemExit(f"error: {exc}") from exc
    if args.output == "json":
        from .core.io import instance_to_dict

        payload = {
            "steps": result.steps,
            "pops": pops.name,
            "instance": instance_to_dict(result.instance),
        }
        if result.verdict is not None:
            payload["verdict"] = result.verdict.as_dict()
        if args.stats:
            payload["stats"] = result.stats
        print(json.dumps(payload, indent=2, ensure_ascii=False))
        return 0
    print(f"# converged in {result.steps} steps over {pops.name}")
    if result.verdict is not None:
        print(f"# pre-flight verdict: {result.verdict.describe()}")
    _print_facts(result.instance)
    if args.stats:
        _print_stats(result.stats)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the crash-safe always-on query service over HTTP."""
    from .core.journal import CHECKPOINT_NAME, load_checkpoint
    from .core.serve import DatalogService, make_server

    pops = resolve_pops(args.pops)
    with open(args.program) as f:
        program = parse_program(f.read())
    database = None
    if args.edb is not None:
        database = load_database(args.edb, pops)
    elif load_checkpoint(args.data_dir) is None:
        raise SystemExit(
            f"error: no --edb given and no {CHECKPOINT_NAME} in "
            f"{args.data_dir!r} to recover from"
        )
    try:
        service = DatalogService(
            program,
            pops,
            args.data_dir,
            database=database,
            checkpoint_every=args.checkpoint_every,
            query_wall_s=args.query_wall_s,
            pool_workers=args.threads,
            plan=args.plan,
            engine=args.engine,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"# serving on http://{host}:{port} (seq {service.durable.seq})")
    print("# routes: GET /health /stats /query /scan · POST /mutate /checkpoint")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("# shutting down (state is journaled; restart to recover)")
    finally:
        server.server_close()
        service.close()
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    pops = resolve_pops(args.pops)
    with open(args.program) as f:
        program = parse_program(f.read())
    database = load_database(args.edb, pops)
    report = analysis.classify(program, database)
    print(f"value space     : {pops.name}")
    print(f"taxonomy case   : {report.taxonomy_case}")
    print(f"linear program  : {report.linear}")
    print(f"ground IDB atoms: {report.n_ground_atoms}")
    print(f"stability p     : {report.stability_p}")
    print(f"step bound      : {report.bound}")
    print(f"why             : {report.explanation}")
    return 0


def cmd_pops_list(_args: argparse.Namespace) -> int:
    for name in sorted(POPS_FACTORIES):
        suffix = (
            " (parameterized, e.g. tropp:2)" if name in ("tropp", "tropeta") else ""
        )
        print(name + suffix)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="datalog°: run Datalog over (pre-) semirings",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate a program to its fixpoint")
    run.add_argument("program", help="datalog° source file")
    run.add_argument("--pops", required=True, help="value space, e.g. trop")
    run.add_argument("--edb", required=True, help="JSON EDB file")
    run.add_argument(
        "--method",
        default="naive",
        choices=("naive", "seminaive", "grounded"),
    )
    run.add_argument("--max-iterations", type=int, default=100_000)
    run.add_argument(
        "--plan",
        default="indexed",
        choices=("indexed", "indexed-greedy", "naive"),
        help=(
            "join strategy: cost-ordered hash-index probes (default), "
            "greedy-ordered probes, or the seed scan join"
        ),
    )
    run.add_argument(
        "--schedule",
        default="auto",
        choices=VALID_SCHEDULES,
        help=(
            "fixpoint scheduling: per-SCC strata (auto/scc), parallel "
            "independent strata, or the whole-program iteration"
        ),
    )
    run.add_argument(
        "--engine",
        default="auto",
        choices=VALID_ENGINES,
        help=(
            "join/evaluation pipeline: closure kernels (auto/compiled), "
            "generated-source kernels (codegen), columnar whole-batch "
            "kernels (batched), or the re-planned generator pipeline "
            "(interpreted)"
        ),
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "shard the semi-naïve delta across N worker processes "
            "(partition-local joins + delta-shipping exchange; "
            "requires --method seminaive; default 1 = in-process)"
        ),
    )
    run.add_argument(
        "--query",
        default=None,
        metavar="PATTERN",
        help=(
            "demand pattern like 'T(a,?)' ('?'/'_' = free position): "
            "magic-set-specialize the program to the bound pattern and "
            "evaluate only the demanded part of the fixpoint; outside "
            "the supported fragment the full fixpoint runs with "
            "stats['demand_fallbacks'] counted (see --stats)"
        ),
    )
    run.add_argument(
        "--budget-iterations",
        type=int,
        default=None,
        metavar="N",
        help=(
            "iteration budget (overrides --max-iterations); exceeding "
            "it exits 3 with the partial fixpoint prefix"
        ),
    )
    run.add_argument(
        "--budget-wall-s",
        type=float,
        default=None,
        metavar="S",
        help=(
            "wall-clock budget in seconds, polled inside kernel "
            "applications; exceeding it exits 3 with the partial prefix"
        ),
    )
    run.add_argument(
        "--budget-tuples",
        type=int,
        default=None,
        metavar="N",
        help=(
            "budget on the total derived-tuple count; exceeding it "
            "exits 3 with the partial prefix"
        ),
    )
    run.add_argument(
        "--preflight",
        default="auto",
        choices=("auto", "off"),
        help=(
            "run the stability/convergence pre-flight and report its "
            "verdict (converges / bounded-by-N / may-diverge) with the "
            "result (default auto)"
        ),
    )
    run.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print the run's counters (join core, exchange volume, "
            "shard_fallbacks / shard_stall_fallbacks, …) after the facts"
        ),
    )
    run.add_argument(
        "--output", default="text", choices=("text", "json"),
        help="result format (text facts or a JSON document)",
    )
    run.set_defaults(handler=cmd_run)

    serve = sub.add_parser(
        "serve",
        help="run the crash-safe incremental query service over HTTP",
    )
    serve.add_argument("program", help="datalog° source file")
    serve.add_argument("--pops", required=True, help="value space, e.g. trop")
    serve.add_argument(
        "--edb",
        default=None,
        help=(
            "JSON EDB file for a cold start; omit to recover the warm "
            "state from --data-dir's checkpoint + journal"
        ),
    )
    serve.add_argument(
        "--data-dir",
        required=True,
        help="directory for the write-ahead journal and checkpoints",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8750,
        help="TCP port (0 picks an ephemeral port; default 8750)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        metavar="N",
        help="checkpoint + rotate the journal every N mutation batches",
    )
    serve.add_argument(
        "--query-wall-s",
        type=float,
        default=2.0,
        metavar="S",
        help=(
            "per-request wall budget; a blown budget returns a "
            "structured 408 instead of hanging"
        ),
    )
    serve.add_argument(
        "--threads",
        type=int,
        default=4,
        metavar="N",
        help="request thread-pool width",
    )
    serve.add_argument(
        "--plan",
        default="indexed",
        choices=("indexed", "indexed-greedy", "naive"),
    )
    serve.add_argument("--engine", default="auto", choices=VALID_ENGINES)
    serve.set_defaults(handler=cmd_serve)

    classify = sub.add_parser(
        "classify", help="predict convergence (Theorem 1.2)"
    )
    classify.add_argument("program")
    classify.add_argument("--pops", required=True)
    classify.add_argument("--edb", required=True)
    classify.set_defaults(handler=cmd_classify)

    pops_list = sub.add_parser("pops-list", help="list known value spaces")
    pops_list.set_defaults(handler=cmd_pops_list)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point (also exposed as ``python -m repro``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
