"""Shortest paths, k-shortest paths and near-optimal path lengths.

Reproduces Example 4.1 end to end on the paper's Fig. 2(a) graph and
then scales the same programs to a random 60-node graph, comparing the
naïve and semi-naïve engines (Section 6) and cross-checking against
Dijkstra.  Run:

    python examples/shortest_paths.py
"""

from __future__ import annotations

import time

from repro import core, programs, semirings, workloads


def paper_traces() -> None:
    print("=== Example 4.1 on Fig. 2(a) ===")
    db = core.Database(
        pops=semirings.TROP, relations={"E": workloads.fig_2a_graph()}
    )
    result = core.solve(programs.sssp("a"), db, capture_trace=True)
    print("SSSP over Trop+ (the paper's table):")
    print("       L(a)  L(b)  L(c)  L(d)")
    for t, snap in enumerate(result.trace):
        row = [snap.get("L", (n,)) for n in "abcd"]
        print(f"  L({t}) " + "  ".join(f"{v:>4}" for v in row))

    t1 = semirings.TropicalPSemiring(1)
    db1 = core.Database(
        pops=t1,
        relations={
            "E": {e: t1.singleton(w) for e, w in workloads.fig_2a_graph().items()}
        },
    )
    two = core.solve(
        programs.sssp("a", source_value=t1.one, missing_value=t1.zero), db1
    )
    print("\nTwo shortest path lengths over Trop+_1:")
    for n in "abcd":
        print(f"  L({n}) = {two.instance.get('L', (n,))}")

    te = semirings.TropicalEtaSemiring(1.5)
    dbe = core.Database(
        pops=te,
        relations={
            "E": {e: te.singleton(w) for e, w in workloads.fig_2a_graph().items()}
        },
    )
    near = core.solve(
        programs.sssp("a", source_value=te.one, missing_value=te.zero), dbe
    )
    print("\nPath lengths within η = 1.5 of optimal over Trop+_≤η:")
    for n in "abcd":
        print(f"  L({n}) = {near.instance.get('L', (n,))}")


def scale_up(n: int = 60, p: float = 0.08, seed: int = 7) -> None:
    print(f"\n=== random graph: n={n}, p={p} ===")
    edges = workloads.random_weighted_digraph(n, p, seed=seed)
    db = core.Database(pops=semirings.TROP, relations={"E": dict(edges)})
    prog = programs.sssp(0)

    t0 = time.perf_counter()
    naive = core.solve(prog, db, method="naive")
    t_naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    semi = core.solve(prog, db, method="seminaive")
    t_semi = time.perf_counter() - t0

    assert semi.instance.equals(naive.instance)
    oracle = workloads.dijkstra(edges, 0)
    for node, dist in oracle.items():
        assert abs(naive.instance.get("L", (node,)) - dist) < 1e-9

    print(f"  naïve      : {naive.steps:3d} steps, "
          f"{naive.stats['products']:7d} products, {t_naive * 1e3:7.1f} ms")
    print(f"  semi-naïve : {semi.steps:3d} steps, "
          f"{semi.stats['products']:7d} products, {t_semi * 1e3:7.1f} ms")
    print("  both agree with Dijkstra ✓")


def main() -> None:
    paper_traces()
    scale_up()


if __name__ == "__main__":
    main()
