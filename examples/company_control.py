"""Company control: two value spaces in one recursion (Example 4.3).

``S(x, y) ∈ R+`` holds the fraction of shares x owns in y.  x *controls*
y when the shares x owns directly plus the shares owned by companies x
already controls exceed one half — a Boolean predicate defined through
an ``R+`` aggregation, and feeding back into it.  The two spaces are
bridged by monotone indicator/threshold maps, so the joint least
fixpoint exists (Section 4.5).  Run:

    python examples/company_control.py
"""

from __future__ import annotations

from repro.core import (
    BoolAtom,
    Database,
    HybridEvaluator,
    Indicator,
    Program,
    RelAtom,
    Rule,
    SumProduct,
    ThresholdRule,
    terms,
)
from repro.semirings import REAL_PLUS


def build(shares):
    companies = sorted({c for pair in shares for c in pair})
    cv_rule = Rule(
        "CV",
        terms(["X", "Z", "Y"]),
        (
            SumProduct(
                (
                    Indicator(BoolAtom("Same", terms(["X", "Z"]))),
                    RelAtom("S", terms(["X", "Y"])),
                )
            ),
            SumProduct(
                (
                    Indicator(BoolAtom("C", terms(["X", "Z"]))),
                    RelAtom("S", terms(["Z", "Y"])),
                )
            ),
        ),
    )
    t_rule = Rule(
        "T",
        terms(["X", "Y"]),
        (
            SumProduct(
                (RelAtom("CV", terms(["X", "Z", "Y"])),),
                condition=BoolAtom("Company", terms(["Z"])),
            ),
        ),
    )
    program = Program(
        rules=[cv_rule, t_rule],
        edbs={"S": 2},
        bool_edbs={"Same": 2, "Company": 1, "C": 2},
    )
    threshold = ThresholdRule(
        head_relation="C",
        head_args=terms(["X", "Y"]),
        body=SumProduct(
            (RelAtom("T", terms(["X", "Y"])),),
            condition=BoolAtom("Company", terms(["X"]))
            & BoolAtom("Company", terms(["Y"])),
        ),
        predicate=lambda v: v > 0.5,
    )
    db = Database(
        pops=REAL_PLUS,
        relations={"S": dict(shares)},
        bool_relations={
            "Company": {(c,) for c in companies},
            "Same": {(c, c) for c in companies},
        },
    )
    return program, threshold, db


def main() -> None:
    # A pyramid: holding h controls m1/m2 with 60% each; m1+m2 jointly
    # hold 30%+30% of the operating company o; nobody alone holds > 50%
    # of o, yet h controls it through the pyramid.
    shares = {
        ("h", "m1"): 0.6,
        ("h", "m2"): 0.6,
        ("m1", "o"): 0.3,
        ("m2", "o"): 0.3,
        ("x", "o"): 0.4,
    }
    program, threshold, db = build(shares)
    hybrid = HybridEvaluator(program, [threshold], db)
    result = hybrid.run()
    print("share register:")
    for (a, b), f in sorted(shares.items()):
        print(f"  {a} owns {f:.0%} of {b}")
    print("\ntotal attributable holdings T(x, y):")
    for (a, b), v in sorted(result.instance.support("T").items()):
        print(f"  T({a}, {b}) = {v:.2f}")
    print("\ncontrol relation (threshold > 0.5):")
    for a, b in sorted(hybrid.bool_facts("C")):
        print(f"  {a} controls {b}")
    assert ("h", "o") in hybrid.bool_facts("C")
    assert ("x", "o") not in hybrid.bool_facts("C")
    print("\nthe pyramid is detected: h controls o with no direct shares ✓")


if __name__ == "__main__":
    main()
