"""Bill of material over the lifted reals (Example 4.2).

Aggregation inside recursion: the total cost of a part sums its own
cost and the totals of all sub-parts.  Over ``R⊥`` parts on a cyclic
sub-part relation come out ``⊥`` ("cannot be priced") while the rest of
the hierarchy is still priced — the distinctive POPS behaviour; over
``N`` the same program diverges.  Run:

    python examples/bill_of_material.py
"""

from __future__ import annotations

from repro import core, programs, semirings, workloads
from repro.fixpoint import DivergenceError
from repro.semirings import BOTTOM


def paper_instance() -> None:
    print("=== Example 4.2 on Fig. 2(b) ===")
    edges, costs = workloads.fig_2b_bom()
    db = core.Database(
        pops=semirings.LIFTED_REAL,
        relations={"C": {(k,): v for k, v in costs.items()}},
        bool_relations={"E": set(edges)},
    )
    result = core.solve(programs.bill_of_material(), db, capture_trace=True)
    print("        T(a)  T(b)  T(c)  T(d)")
    for t, snap in enumerate(result.trace):
        row = [snap.get("T", (n,)) for n in "abcd"]
        print(f"  T({t})  " + "  ".join(f"{v!s:>4}" for v in row))
    print("a, b are on a cost cycle → ⊥; c, d are priced (11, 10).")

    # Over N the same program diverges (values on the cycle grow
    # forever) — Theorem 1.2: N is not stable.
    db_nat = core.Database(
        pops=semirings.NAT,
        relations={"C": {(k,): int(v) for k, v in costs.items()}},
        bool_relations={"E": set(edges)},
    )
    try:
        core.solve(programs.bill_of_material(), db_nat, max_iterations=100)
    except DivergenceError:
        print("over N the naïve algorithm diverges, as predicted ✓")


def hierarchy(depth: int = 5, fanout: int = 3) -> None:
    print(f"\n=== synthetic hierarchy: depth={depth}, fanout={fanout} ===")
    edges, costs = workloads.part_hierarchy(depth, fanout, seed=11)
    db = core.Database(
        pops=semirings.LIFTED_REAL,
        relations={"C": {(k,): v for k, v in costs.items()}},
        bool_relations={"E": set(edges)},
    )
    result = core.solve(programs.bill_of_material(), db)
    root_total = result.instance.get("T", (0,))
    print(f"  {len(costs)} parts; root total = {root_total:.2f}; "
          f"converged in {result.steps} steps (≈ depth + 1)")

    # Now poison the hierarchy with cyclic back-edges.
    edges2, costs2 = workloads.part_hierarchy(
        depth, fanout, seed=11, cyclic_back_edges=3
    )
    db2 = core.Database(
        pops=semirings.LIFTED_REAL,
        relations={"C": {(k,): v for k, v in costs2.items()}},
        bool_relations={"E": set(edges2)},
    )
    result2 = core.solve(programs.bill_of_material(), db2)
    unpriced = [
        n for n in costs2 if result2.instance.get("T", (n,)) is BOTTOM
    ]
    print(f"  with 3 back-edges: {len(unpriced)} parts become un-priceable"
          f" (⊥), e.g. {sorted(unpriced)[:6]} …")
    print("  everything not reaching a cycle is still priced ✓")


def main() -> None:
    paper_instance()
    hierarchy()


if __name__ == "__main__":
    main()
