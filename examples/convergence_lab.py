"""Convergence lab: the stability theory of Section 5, hands on.

Explores the program ``x :- 1 ⊕ c·x`` (Eq. 29) — the litmus test whose
convergence characterizes the whole language's (Theorem 1.2) — across
value spaces, prints stability indices, and classifies programs with
the analysis API.  Run:

    python examples/convergence_lab.py
"""

from __future__ import annotations

from repro import analysis, core, programs, semirings, workloads
from repro.fixpoint import DivergenceError
from repro.semirings import element_stability_index


def geometric_program_tour() -> None:
    print("=== the program  x :- 1 ⊕ c·x  across value spaces ===")
    cases = [
        ("B (c = true)", semirings.BOOL, True),
        ("Trop+ (c = 2)", semirings.TROP, 2.0),
        ("Trop+_2 (c = {{1,∞,∞}})",
         semirings.TropicalPSemiring(2),
         semirings.TropicalPSemiring(2).singleton(1.0)),
        ("Trop+_≤3 (c = {0.5})",
         semirings.TropicalEtaSemiring(3.0),
         semirings.TropicalEtaSemiring(3.0).singleton(0.5)),
        ("N (c = 2)", semirings.NAT, 2),
    ]
    for label, pops, c in cases:
        prog = programs.one_rule_program(pops.one)
        db = core.Database(pops=pops, relations={"Cval": {("u",): c}})
        try:
            result = core.solve(prog, db, max_iterations=64)
            value = result.instance.get("X", ("u",))
            report = element_stability_index(pops, c)
            print(f"  {label:28s} converges in {result.steps:2d} steps "
                  f"(element index {report.index}); lfp = {value}")
        except DivergenceError:
            print(f"  {label:28s} DIVERGES (c is not stable)")


def classification_tour() -> None:
    print("\n=== classify(): the taxonomy of Section 4.2 ===")
    prog = programs.sssp("a")
    spaces = [
        ("Trop+", semirings.TROP,
         {"E": workloads.fig_2a_graph()}),
        ("Trop+_1", semirings.TropicalPSemiring(1),
         {"E": {e: semirings.TropicalPSemiring(1).singleton(w)
                for e, w in workloads.fig_2a_graph().items()}}),
        ("N", semirings.NAT,
         {"E": {e: int(w) for e, w in workloads.fig_2a_graph().items()}}),
    ]
    for label, pops, relations in spaces:
        db = core.Database(pops=pops, relations=relations)
        report = analysis.classify(prog, db, probe_budget=16)
        bound = report.bound if report.bound is not None else "—"
        print(f"  {label:8s} case {report.taxonomy_case:8s} "
              f"N = {report.n_ground_atoms}, step bound = {bound}")
        print(f"           {report.explanation}")


def matrix_bound_demo() -> None:
    print("\n=== Lemma 5.20: the cycle attains (p+1)·N − 1 exactly ===")
    for p in (0, 1, 2):
        tp = semirings.TropicalPSemiring(p)
        for n in (3, 5):
            a = semirings.cycle_matrix(tp, n, tp.singleton(1.0))
            report = semirings.matrix_stability_index(tp, a)
            bound = (p + 1) * n - 1
            marker = "tight ✓" if report.index == bound else "below bound"
            print(f"  p={p} n={n}: measured {report.index:2d}, "
                  f"bound {bound:2d} — {marker}")


def main() -> None:
    geometric_program_tour()
    classification_tour()
    matrix_bound_demo()


if __name__ == "__main__":
    main()
