"""The win-move game: negation via THREE (Section 7).

Computes the winning positions of the pebble game on Fig. 4 three ways
and shows they coincide:

1. the alternating fixpoint / well-founded semantics (Section 7.1);
2. datalog° over the POPS THREE with the monotone ``not`` (Section 7.2);
3. datalog° over the bilattice FOUR — demonstrating that ``⊤`` never
   shows up (Section 7.3).

Run:  python examples/win_move.py
"""

from __future__ import annotations

from repro import negation, workloads
from repro.semirings import BOTTOM


def main() -> None:
    edges = workloads.fig_4_edges()
    nodes = "abcdef"
    print("game graph:", sorted(edges))

    # --- 1. alternating fixpoint --------------------------------------
    program = negation.win_move_program(edges)
    wf = negation.alternating_fixpoint(program)
    print("\nalternating fixpoint trace (Section 7.1 table):")
    print("        " + "  ".join(f"W({n})" for n in nodes))
    for t, state in enumerate(wf.trace):
        row = ["1" if ("Win", n) in state else "0" for n in nodes]
        print(f"  J({t})  " + "     ".join(row))
    print("well-founded model:")
    for n in nodes:
        print(f"  Win({n}) = {wf.value(('Win', n))}")

    # --- 2. datalog° over THREE ---------------------------------------
    result = negation.win_move_datalogo(edges, capture_trace=True)
    print("\ndatalog° over THREE (Section 7.2 table):")
    print("        " + "  ".join(f"W({n})" for n in nodes))
    for t, snap in enumerate(result.trace):
        row = [str(snap.get("Win", (n,))) for n in nodes]
        print(f"  W({t})  " + "  ".join(f"{v:>4}" for v in row))

    # --- 3. FOUR: ⊤ never appears -------------------------------------
    result4 = negation.win_move_datalogo(edges, use_four=True)
    tops = [
        n for n in nodes
        if result4.instance.get("Win", (n,)) not in (BOTTOM, True, False)
    ]
    print(f"\nover FOUR the value ⊤ appears at {len(tops)} atoms "
          "(Fitting Prop. 7.1 says zero) ✓" if not tops else "UNEXPECTED ⊤!")

    # --- agreement -----------------------------------------------------
    agree = all(
        (result.instance.get("Win", (n,)) is BOTTOM)
        == (wf.value(("Win", n)) == "undef")
        for n in nodes
    )
    print(f"THREE fixpoint == well-founded model: {agree}")


if __name__ == "__main__":
    main()
