"""Quickstart: one datalog° program, many value spaces.

The transitive-closure rule

    T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y).

is *generic over the POPS*: over the Booleans it computes reachability,
over the tropical semiring all-pairs shortest paths, over ``Trop+_1``
the two best path lengths — the headline idea of the paper
(Example 1.1).  Run:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import core, semirings, workloads


PROGRAM_TEXT = "T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y)."


def main() -> None:
    program = core.parse_program(PROGRAM_TEXT)
    weights = workloads.fig_2a_graph()
    print("program:", program)
    print("edges  :", weights)

    # 1. Boolean reading: reachability.
    bool_db = core.Database(
        pops=semirings.BOOL, relations={"E": {e: True for e in weights}}
    )
    reach = core.solve(program, bool_db)
    print("\nreachability over B:")
    for key in sorted(reach.instance.support("T")):
        print(f"  T{key} = true")

    # 2. Tropical reading: all-pairs shortest paths.
    trop_db = core.Database(pops=semirings.TROP, relations={"E": dict(weights)})
    apsp = core.solve(program, trop_db)
    print("\nshortest paths over Trop+:")
    for key, value in sorted(apsp.instance.support("T").items()):
        print(f"  T{key} = {value}")

    # 3. Trop+_1 reading: the two best path lengths per pair.
    t1 = semirings.TropicalPSemiring(1)
    t1_db = core.Database(
        pops=t1,
        relations={"E": {e: t1.singleton(w) for e, w in weights.items()}},
    )
    two_best = core.solve(program, t1_db)
    print("\ntwo best path lengths over Trop+_1:")
    for key, value in sorted(two_best.instance.support("T").items()):
        print(f"  T{key} = {value}")

    # All three runs used the same rules — only the value space changed.
    print(
        f"\nconverged in {reach.steps} / {apsp.steps} / {two_best.steps} "
        "steps respectively (Theorem 1.2 guarantees convergence here)."
    )


if __name__ == "__main__":
    main()
