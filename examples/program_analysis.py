"""Constant propagation as datalog° over a completed POPS.

Section 8 motivates semiring datalog with program analysis (Cousot &
Cousot's abstract interpretation).  The classic *constant propagation*
lattice is exactly the completed POPS ``N⊤⊥`` of Section 2.5.1:

    ⊥  — "no information yet"   (unreached definition)
    n  — "always the constant n"
    ⊤  — "conflicting values"   (not a constant)

A tiny SSA-ish program is encoded as Boolean EDB facts:

* ``Const(v, c)`` — v := literal c;
* ``Copy(v, w)``  — v := w;
* ``Mul(v, w, u)``— v := w · u  (the POPS ``⊗`` of ``N⊤⊥``);
* ``Phi1/Phi2(v, w)`` — the two inputs of v := φ(·, ·).

φ's merge is *not* the POPS ``⊕`` (which adds numerically); it is the
lattice join — agreeing constants stay, disagreement goes to ``⊤``,
an unreached input is neutral.  That join is monotone in the knowledge
order, so it enters the rule as an interpreted function (Section 4.5)
and the least-fixpoint semantics still applies.  Run:

    python examples/program_analysis.py
"""

from __future__ import annotations

from repro.core import (
    BoolAtom,
    Database,
    FuncFactor,
    KeyAsValue,
    Program,
    RelAtom,
    Rule,
    SumProduct,
    naive_fixpoint,
    terms,
    var,
)
from repro.semirings import BOTTOM, TOP, CompletedPOPS, NAT
from repro.semirings.base import FunctionRegistry


def phi_join(a, b):
    """Constant-propagation merge: ⊥ neutral, conflicts go to ⊤.

    Monotone w.r.t. the knowledge order ⊥ ⊑ n ⊑ ⊤ in both arguments.
    """
    if a is BOTTOM:
        return b
    if b is BOTTOM:
        return a
    if a is TOP or b is TOP or a != b:
        return TOP
    return a


def constant_propagation_program() -> Program:
    """``Val(v)`` defined by literals, copies, products and φ-joins."""
    rule = Rule(
        "Val",
        terms(["V"]),
        (
            SumProduct(
                (KeyAsValue(var("C"), convert="lit"),),
                condition=BoolAtom("Const", terms(["V", "C"])),
            ),
            SumProduct(
                (RelAtom("Val", terms(["W"])),),
                condition=BoolAtom("Copy", terms(["V", "W"])),
            ),
            SumProduct(
                (RelAtom("Val", terms(["W"])), RelAtom("Val", terms(["U"]))),
                condition=BoolAtom("Mul", terms(["V", "W", "U"])),
            ),
            SumProduct(
                (
                    FuncFactor(
                        "phi",
                        (
                            RelAtom("Val", terms(["W"])),
                            RelAtom("Val", terms(["U"])),
                        ),
                    ),
                ),
                condition=BoolAtom("Phi1", terms(["V", "W"]))
                & BoolAtom("Phi2", terms(["V", "U"])),
            ),
        ),
    )
    return Program(
        rules=[rule],
        bool_edbs={"Const": 2, "Copy": 2, "Mul": 3, "Phi1": 2, "Phi2": 2},
    )


def analyse(facts) -> dict:
    """Run the analysis; returns variable → ⊥ | int | ⊤."""
    pops = CompletedPOPS(NAT)
    registry = FunctionRegistry()
    registry.register("lit", lambda c: c)
    registry.register("phi", phi_join)
    db = Database(pops=pops, bool_relations=facts)
    result = naive_fixpoint(
        constant_propagation_program(), db, functions=registry
    )
    variables = {key[0] for rel in facts.values() for key in rel}
    return {
        v: result.instance.get("Val", (v,))
        for v in sorted(variables, key=str)
    }


def main() -> None:
    # x = 3; y = 4; z = x * y;
    # branch 1: w1 = 12; branch 2: w2 = z;
    # v = φ(w1, w2)   → both 12: still the constant 12
    # u = φ(x, y)     → 3 vs 4: conflict, ⊤
    facts = {
        "Const": {("x", 3), ("y", 4), ("w1", 12)},
        "Copy": {("w2", "z")},
        "Mul": {("z", "x", "y")},
        "Phi1": {("v", "w1"), ("u", "x")},
        "Phi2": {("v", "w2"), ("u", "y")},
    }
    values = analyse(facts)
    print("constant-propagation results over N⊤⊥:")
    for name, value in values.items():
        reading = (
            "unreached"
            if value is BOTTOM
            else "not a constant" if value is TOP else f"constant {value}"
        )
        print(f"  {name:3s} = {value!s:3s}  ({reading})")
    assert values["z"] == 12
    assert values["v"] == 12       # both φ inputs agree on 12
    assert values["u"] is TOP      # 3 vs 4: conflict
    print("\nφ with agreeing inputs stays constant; conflicts go to ⊤ ✓")


if __name__ == "__main__":
    main()
