"""Grammar/parse-tree machinery (§5.2): Lemma 5.6, Example 5.7,
Example 5.5 (Catalan numbers), Proposition 5.13 (Parikh images)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    SystemGrammar,
    univariate_basis,
    univariate_image_valid,
)
from repro.core import Monomial, Polynomial, PolynomialSystem
from repro.semirings import FREE, TROP, monomial


def example_5_7_system(structure, a, b, c, u, v, w):
    """The two-variable map of Example 5.7:
    x ↦ a·x·y + b·y + c ;  y ↦ u·x·y + v·x + w."""
    return PolynomialSystem(
        pops=structure,
        polynomials={
            "x": Polynomial((
                Monomial.make(a, {"x": 1, "y": 1}),
                Monomial.make(b, {"y": 1}),
                Monomial.make(c, {}),
            )),
            "y": Polynomial((
                Monomial.make(u, {"x": 1, "y": 1}),
                Monomial.make(v, {"x": 1}),
                Monomial.make(w, {}),
            )),
        },
    )


@pytest.fixture()
def free_example_5_7():
    gens = {s: FREE.generator(s) for s in "abcuvw"}
    return example_5_7_system(
        FREE,
        gens["a"], gens["b"], gens["c"],
        gens["u"], gens["v"], gens["w"],
    )


class TestExample57:
    def test_depth_1_component(self, free_example_5_7):
        """(f⁽¹⁾(0))₁ = c."""
        grammar = SystemGrammar(free_example_5_7)
        trees = list(grammar.trees("x", 1))
        assert len(trees) == 1
        assert FREE.eq(
            grammar.yields_sum("x", 1), FREE.generator("c")
        )

    def test_depth_2_component_matches_paper(self, free_example_5_7):
        """(f⁽²⁾(0))₁ = a·c·w + b·w + c — the three trees of Fig. 3."""
        grammar = SystemGrammar(free_example_5_7)
        trees = list(grammar.trees("x", 2))
        assert len(trees) == 3  # Fig. 3 shows exactly three x-trees
        expected = FREE.add_many([
            FREE.mul_many([FREE.generator(s) for s in "acw"]),
            FREE.mul_many([FREE.generator(s) for s in "bw"]),
            FREE.generator("c"),
        ])
        assert FREE.eq(grammar.yields_sum("x", 2), expected)

    def test_lemma_5_6_over_free_semiring(self, free_example_5_7):
        grammar = SystemGrammar(free_example_5_7)
        for q in (0, 1, 2, 3):
            assert grammar.lemma_5_6_holds(q)

    def test_lemma_5_6_over_trop(self):
        system = example_5_7_system(TROP, 1.0, 2.0, 0.5, 1.5, 3.0, 0.25)
        grammar = SystemGrammar(system)
        for q in (1, 2, 3):
            assert grammar.lemma_5_6_holds(q)

    def test_tree_count_dp_matches_enumeration(self, free_example_5_7):
        grammar = SystemGrammar(free_example_5_7)
        for var in ("x", "y"):
            for depth in (1, 2, 3):
                assert grammar.count_trees(var, depth) == len(
                    list(grammar.trees(var, depth))
                )

    def test_tree_depth_and_size(self, free_example_5_7):
        grammar = SystemGrammar(free_example_5_7)
        for tree in grammar.trees("x", 3):
            assert 1 <= tree.depth() <= 3
            assert tree.size() >= tree.depth()


def catalan(n: int) -> int:
    return math.comb(2 * n, n) // (n + 1)


class TestExample55Catalan:
    """f(x) = b + a·x² over ℕ[a, b]: the coefficient of aⁿbⁿ⁺¹ in
    f⁽q⁾(0) equals Catalan(n) once q > n (Eq. 33)."""

    @pytest.fixture()
    def system(self):
        return PolynomialSystem(
            pops=FREE,
            polynomials={
                "x": Polynomial((
                    Monomial.make(FREE.generator("b"), {}),
                    Monomial.make(FREE.generator("a"), {"x": 2}),
                )),
            },
        )

    def test_catalan_coefficients(self, system):
        q = 5
        state = {"x": FREE.zero}
        for _ in range(q):
            state = system.apply(state)
        for n in range(q - 1):
            mono = monomial({"a": n, "b": n + 1})
            assert FREE.coefficient(state["x"], mono) == catalan(n), n

    def test_unstabilized_tail_coefficient(self, system):
        """At exactly n = q − 1 … q the coefficient is still growing."""
        q = 3
        state = {"x": FREE.zero}
        for _ in range(q):
            state = system.apply(state)
        mono = monomial({"a": 3, "b": 4})
        assert FREE.coefficient(state["x"], mono) < catalan(3)

    def test_lambda_counts_are_tree_counts(self, system):
        """Eq. 44: λ_v^(q) counts parse trees with Parikh image v."""
        grammar = SystemGrammar(system)
        q = 4
        state = {"x": FREE.zero}
        for _ in range(q):
            state = system.apply(state)
        images = grammar.parikh_images("x", q)
        # Terminal (x, 0) is the b-production, (x, 1) the a-production.
        from collections import Counter

        histogram = Counter()
        for image in images:
            n_a = image[("x", 1)]
            n_b = image[("x", 0)]
            histogram[(n_a, n_b)] += 1
        for (n_a, n_b), count in histogram.items():
            mono = monomial({"a": n_a, "b": n_b})
            assert FREE.coefficient(state["x"], mono) == count


class TestProposition513:
    def test_univariate_images_form_the_linear_set(self):
        """Images of f(x) = a₀ + a₁x + a₂x² trees lie exactly in the
        Prop. 5.13 linear set (cross-checked by enumeration)."""
        system = PolynomialSystem(
            pops=FREE,
            polynomials={
                "x": Polynomial((
                    Monomial.make(FREE.generator("a0"), {}),
                    Monomial.make(FREE.generator("a1"), {"x": 1}),
                    Monomial.make(FREE.generator("a2"), {"x": 2}),
                )),
            },
        )
        grammar = SystemGrammar(system)
        basis = univariate_basis(2)
        images = set()
        for tree in grammar.trees("x", 4):
            t = tree.terminals()
            image = (t[("x", 0)], t[("x", 1)], t[("x", 2)])
            images.add(image)
        assert images  # non-trivial enumeration
        for image in images:
            assert univariate_image_valid(image)
            assert basis.contains(image)

    def test_basis_members_are_realizable(self):
        """Conversely, small members of the linear set are tree images
        (the backward direction of Prop. 5.13)."""
        system = PolynomialSystem(
            pops=FREE,
            polynomials={
                "x": Polynomial((
                    Monomial.make(FREE.generator("a0"), {}),
                    Monomial.make(FREE.generator("a2"), {"x": 2}),
                )),
            },
        )
        grammar = SystemGrammar(system)
        realizable = set()
        for tree in grammar.trees("x", 5):
            t = tree.terminals()
            realizable.add((t[("x", 0)], t[("x", 1)]))
        # Members with k₂ uses of the arity-2 production have k₂+1
        # leaves: (1,0), (2,1), (3,2), (4,3) … all realizable at depth 5.
        for k2 in range(4):
            assert (k2 + 1, k2) in realizable

    def test_invalid_images_rejected(self):
        assert univariate_image_valid((1, 0, 0))
        assert univariate_image_valid((2, 5, 1))
        assert not univariate_image_valid((0, 1))
        assert not univariate_image_valid((3, 0, 1))

    def test_linear_set_membership_search(self):
        basis = univariate_basis(2)
        assert basis.contains((1, 0, 0))
        assert basis.contains((2, 3, 1))
        assert not basis.contains((0, 0, 0))
        assert not basis.contains((1, 0, 1))

    def test_semilinear_union(self):
        from repro.analysis import LinearSet, SemiLinearSet

        s = SemiLinearSet(parts=(
            LinearSet(base=(0, 0), periods=((1, 0),)),
            LinearSet(base=(0, 1), periods=((0, 2),)),
        ))
        assert s.contains((5, 0))
        assert s.contains((0, 5))
        assert not s.contains((1, 2))
