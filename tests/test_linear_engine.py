"""LinearLFP (Algorithm 2 / Theorem 5.22) and the engine facade."""

from __future__ import annotations

import pytest

from repro import programs, workloads
from repro.core import (
    Database,
    LinearFunction,
    LinearityError,
    Monomial,
    Polynomial,
    PolynomialSystem,
    ground_program,
    linear_lfp,
    solve,
)
from repro.semirings import BOOL, BOTTOM, LIFTED_REAL, TROP, TropicalPSemiring


class TestLinearFunction:
    def test_from_polynomial_merges_like_terms(self):
        poly = Polynomial((
            Monomial.make(1.0, {"x": 1}),
            Monomial.make(2.0, {"x": 1}),
            Monomial.make(5.0, {}),
        ))
        f = LinearFunction.from_polynomial(TROP, poly)
        assert f.coeffs == {"x": 1.0}  # min(1, 2)
        assert f.const == 5.0

    def test_rejects_quadratic(self):
        poly = Polynomial((Monomial.make(1.0, {"x": 2}),))
        with pytest.raises(LinearityError):
            LinearFunction.from_polynomial(TROP, poly)

    def test_substitution_keeps_explicit_support(self):
        """Substituting into a function that lacks the variable is a
        no-op — no phantom 0-coefficients appear (the §5.5 subtlety)."""
        f = LinearFunction(coeffs={}, const=3.0)
        c = LinearFunction(coeffs={"y": 1.0}, const=0.0)
        assert f.substitute(LIFTED_REAL, "x", c) is f

    def test_evaluate(self):
        f = LinearFunction(coeffs={"x": 2.0}, const=1.0)
        assert f.evaluate(TROP, {"x": 5.0}) == 1.0  # min(1, 2+5)
        assert f.evaluate(TROP, {"x": -0.5}) == 1.0


class TestLinearLFP:
    def _check_against_naive(self, system, p):
        direct = linear_lfp(system, p)
        iterated = system.kleene().value
        for var in system.order:
            a, b = direct[var], iterated[var]
            if isinstance(a, float) and isinstance(b, float):
                # Algorithm 2 reassociates ⊗-sums; floats may differ in
                # the last ulp even though the fixpoints are equal.
                assert a == pytest.approx(b), var
            else:
                assert system.pops.eq(a, b), var

    def test_sssp_grounded(self, sssp_program, fig2a_trop_db):
        system = ground_program(sssp_program, fig2a_trop_db)
        self._check_against_naive(system, 0)

    def test_apsp_grounded(self):
        edges = workloads.random_weighted_digraph(5, 0.4, seed=2)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        system = ground_program(programs.apsp(), db)
        self._check_against_naive(system, 0)

    def test_reachability_over_bool(self):
        dag = workloads.random_dag(6, 0.4, seed=1)
        db = Database(pops=BOOL, relations={"E": {e: True for e in dag}})
        system = ground_program(programs.transitive_closure(), db)
        self._check_against_naive(system, 0)

    def test_tropp_linear_system(self):
        """p > 0: the star is a^(p); cross-check on the 3-cycle."""
        p = 1
        tp = TropicalPSemiring(p)
        edges = {
            k: tp.singleton(w)
            for k, w in workloads.cycle_edges(3, weight=1.0).items()
        }
        db = Database(pops=tp, relations={"E": edges})
        system = ground_program(programs.sssp(0), db)
        self._check_against_naive(system, p)

    def test_bom_grounded_over_lifted(self, bom_db):
        """R⊥ is 0-stable (trivial core); Algorithm 2 handles the ⊥s."""
        system = ground_program(programs.bill_of_material(), bom_db)
        assert system.is_linear()
        direct = linear_lfp(system, 0)
        assert direct[("T", ("a",))] is BOTTOM
        assert direct[("T", ("c",))] == 11.0
        assert direct[("T", ("d",))] == 10.0

    def test_rejects_nonlinear_system(self):
        db = Database(pops=BOOL, relations={"E": {("a", "b"): True}})
        system = ground_program(programs.quadratic_transitive_closure(), db)
        with pytest.raises(LinearityError):
            linear_lfp(system, 0)

    def test_empty_system(self):
        system = PolynomialSystem(pops=TROP, polynomials={})
        assert linear_lfp(system, 0) == {}


class TestEngineFacade:
    @pytest.mark.parametrize(
        "method,kwargs",
        [
            ("naive", {}),
            ("seminaive", {}),
            ("grounded", {}),
            ("linear", {"stability_p": 0}),
        ],
    )
    def test_all_methods_agree_on_sssp(
        self, method, kwargs, sssp_program, fig2a_trop_db
    ):
        reference = solve(sssp_program, fig2a_trop_db, method="naive")
        result = solve(sssp_program, fig2a_trop_db, method=method, **kwargs)
        assert result.instance.equals(reference.instance)

    def test_linear_requires_p(self, sssp_program, fig2a_trop_db):
        with pytest.raises(ValueError):
            solve(sssp_program, fig2a_trop_db, method="linear")

    def test_unknown_method(self, sssp_program, fig2a_trop_db):
        with pytest.raises(ValueError):
            solve(sssp_program, fig2a_trop_db, method="magic")

    def test_grounded_trace_conversion(self, sssp_program, fig2a_trop_db):
        result = solve(
            sssp_program, fig2a_trop_db, method="grounded", capture_trace=True
        )
        assert len(result.trace) == result.steps + 2
        assert result.trace[-1].equals(result.instance)
