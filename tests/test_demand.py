"""Demand-driven query path (PR 10): magic sets as a planner stage.

Covers :mod:`repro.core.demand` end to end:

* query patterns — the ``T(a,?)`` string syntax, the tuple form, the
  :class:`~repro.core.demand.DemandQuery` surface, and the malformed
  inputs that raise :class:`~repro.core.demand.DemandError`;
* the fragment verdict — supported on the idempotent naturally ordered
  semirings, with named reasons for non-idempotent ⊕ (NAT), missing
  natural order (LIFTED_REAL), non-linear sideways prefixes (the
  quadratic TC²), and reserved auxiliary names;
* the rewrite structure — ``__demand_m_*`` magic IDBs, ``__demand_supp_*``
  Boolean support views injected into the augmented database;
* hypothesis differentials: demanded atoms byte-identical to the full
  fixpoint across four semirings × four kernel engines, with soundness
  (no wrong values anywhere) on every draw;
* counted fallbacks — everything outside the fragment (and the
  grounded/linear methods, and ``capture_trace``) runs the full
  fixpoint with ``stats["demand_fallbacks"] == 1`` and a reason in
  ``stats["demand_unsupported"]``;
* SCC-roots pruning — under the multi-view ``graph_analytics`` program
  a point query on ``T`` never materializes the sibling views.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import programs, workloads
from repro.core import Database, Instance, solve
from repro.core.demand import (
    MAGIC_PREFIX,
    VIEW_PREFIX,
    DemandError,
    DemandQuery,
    demand_rewrite,
    demand_solve,
    demand_verdict,
    normalize_query,
    parse_query,
    strip_demand_relations,
)
from repro.semirings import BOOL, BOTTLENECK, LIFTED_REAL, NAT, TROP, VITERBI

# The engine matrix: DATALOGO_ENGINE picks the CI subject; the rest of
# the kernel engines always ride along (same idiom as test_codegen.py).
_SUBJECT = os.environ.get("DATALOGO_ENGINE", "codegen")
ENGINES = tuple(
    dict.fromkeys((_SUBJECT, "interpreted", "compiled", "codegen", "batched"))
)

NODES = ["a", "b", "c", "d", "e"]

edge_sets = st.sets(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=10,
)

#: Per-semiring edge weights, deterministic in the edge's sort rank so
#: one hypothesis draw exercises all four value spaces identically.
#: VITERBI weights are exact binary fractions: byte-parity assertions
#: must not hinge on float rounding.
WEIGHTS = {
    "TROP": lambda i: float(1 + i % 7),
    "BOOL": lambda i: True,
    "BOTTLENECK": lambda i: float(1 + i % 5),
    "VITERBI": lambda i: (1.0, 0.5, 0.25, 0.125)[i % 4],
}
SEMIRINGS = {
    "TROP": TROP,
    "BOOL": BOOL,
    "BOTTLENECK": BOTTLENECK,
    "VITERBI": VITERBI,
}


def weighted_db(name, edges, offset=0):
    weight = WEIGHTS[name]
    relation = {
        e: weight(i + offset) for i, e in enumerate(sorted(edges))
    }
    return Database(pops=SEMIRINGS[name], relations={"E": relation})


# ---------------------------------------------------------------------------
# Query patterns
# ---------------------------------------------------------------------------


class TestQueryPatterns:
    def test_parse_string_form(self):
        q = parse_query("T(a, ?)")
        assert q == DemandQuery("T", ("a", None))
        assert q.adornment == "bf"
        assert q.bindings == ("a",)

    def test_parse_coerces_integers(self):
        assert parse_query("T(3, _)").pattern == (3, None)

    def test_parse_strips_quotes(self):
        assert parse_query("T('a', \"b\")").pattern == ("a", "b")

    def test_parse_nullary(self):
        assert parse_query("Done()").pattern == ()

    def test_parse_rejects_garbage(self):
        with pytest.raises(DemandError, match="unparseable"):
            parse_query("T(a")
        with pytest.raises(DemandError, match="unparseable"):
            parse_query("not a query")

    def test_normalize_accepts_all_spellings(self):
        q = DemandQuery("T", ("a", None))
        assert normalize_query(q) is q
        assert normalize_query("T(a,?)") == q
        assert normalize_query(("T", ("a", None))) == q
        assert normalize_query(("T", ["a", None])) == q

    def test_normalize_rejects_malformed(self):
        with pytest.raises(DemandError):
            normalize_query(42)
        with pytest.raises(DemandError, match="must be a string"):
            normalize_query((42, ("a",)))
        with pytest.raises(DemandError, match="pattern"):
            normalize_query(("T", "ab"))

    def test_matches(self):
        q = DemandQuery("T", ("a", None))
        assert q.matches(("a", "b"))
        assert not q.matches(("b", "b"))
        assert not q.matches(("a",))
        assert str(q) == "T(a, ?)"


# ---------------------------------------------------------------------------
# Fragment verdict
# ---------------------------------------------------------------------------


class TestVerdict:
    @pytest.mark.parametrize("name", sorted(SEMIRINGS), ids=str)
    def test_supported_semirings(self, name):
        verdict = demand_verdict(
            programs.apsp(), ("T", (0, None)), SEMIRINGS[name]
        )
        assert verdict.supported
        assert ("T", "bf") in verdict.adornments
        assert "supported" in verdict.describe()

    def test_non_idempotent_add_rejected(self):
        verdict = demand_verdict(
            programs.transitive_closure(), ("T", (0, None)), NAT
        )
        assert not verdict.supported
        assert any("idempotent" in r for r in verdict.reasons)

    def test_unordered_pops_rejected(self):
        verdict = demand_verdict(
            programs.apsp(), ("T", (0, None)), LIFTED_REAL
        )
        assert not verdict.supported
        assert any("naturally ordered" in r for r in verdict.reasons)

    def test_quadratic_tc_outside_fragment(self):
        """TC²'s T(X,Z)·T(Z,Y) puts an IDB atom in a sideways prefix."""
        verdict = demand_verdict(
            programs.quadratic_transitive_closure(), ("T", (0, None)), BOOL
        )
        assert not verdict.supported
        assert any("IDB" in r for r in verdict.reasons)
        assert "unsupported" in verdict.describe()

    def test_reserved_names_rejected(self):
        prog = programs.apsp(edge=MAGIC_PREFIX + "E")
        verdict = demand_verdict(prog, ("T", (0, None)), TROP)
        assert not verdict.supported
        assert any("reserved" in r for r in verdict.reasons)

    def test_unknown_relation_raises(self):
        with pytest.raises(DemandError, match="not an IDB"):
            demand_verdict(programs.apsp(), ("E", (0, None)), TROP)

    def test_arity_mismatch_raises(self):
        with pytest.raises(DemandError, match="arity"):
            demand_verdict(programs.apsp(), ("T", (0,)), TROP)

    def test_free_query_supported(self):
        verdict = demand_verdict(programs.apsp(), ("T", (None, None)), TROP)
        assert verdict.supported
        assert ("T", "ff") in verdict.adornments


# ---------------------------------------------------------------------------
# Rewrite structure
# ---------------------------------------------------------------------------


class TestRewrite:
    def test_magic_idbs_and_support_views(self):
        db = Database(
            pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
        )
        rewritten, augmented, verdict = demand_rewrite(
            programs.apsp(), ("T", ("a", None)), db
        )
        assert verdict.supported
        magic = [
            name
            for name in rewritten.idbs
            if name.startswith(MAGIC_PREFIX)
        ]
        assert magic == [MAGIC_PREFIX + "T_bf"]
        # Left-linear recursion has an empty sideways prefix: no
        # support views are needed.
        assert not rewritten.bool_edbs
        # The original stores ride along untouched.
        assert augmented.relations["E"] == db.relations["E"]

    def test_prefix_edb_lowers_to_support_view(self):
        """``Out(x) :- E(x,y), Out(y)`` passes bindings through E: the
        rewrite injects a Boolean ``support(E)`` view for the magic
        rule to read."""
        db = Database(
            pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
        )
        rewritten, augmented, verdict = demand_rewrite(
            programs.graph_analytics(), ("Out", ("a",)), db
        )
        assert verdict.supported
        view = VIEW_PREFIX + "E"
        assert rewritten.bool_edbs[view] == 2
        assert augmented.bool_relations[view] == set(db.relations["E"])
        assert MAGIC_PREFIX + "Out_b" in rewritten.idbs

    def test_rewrite_raises_outside_fragment(self):
        db = Database(pops=NAT, relations={"E": {("a", "b"): 1}})
        with pytest.raises(DemandError, match="idempotent"):
            demand_rewrite(programs.transitive_closure(), ("T", ("a", None)), db)

    def test_strip_demand_relations(self):
        inst = Instance(TROP)
        inst.set("T", ("a", "b"), 3.0)
        inst.set(MAGIC_PREFIX + "T_bf", ("a",), 0.0)
        inst.set(MAGIC_PREFIX + "T_bf", ("b",), 0.0)
        cleaned, magic_tuples = strip_demand_relations(inst)
        assert magic_tuples == 2
        assert list(cleaned.relations()) == ["T"]
        assert cleaned.get("T", ("a", "b")) == 3.0


# ---------------------------------------------------------------------------
# Differentials: demanded atoms == full fixpoint, everywhere
# ---------------------------------------------------------------------------


def assert_demand_matches_full(demand, full, pattern, relation="T"):
    """Byte-parity on the demanded atoms, soundness on all of them."""
    demanded = {
        key: value
        for key, value in full.instance.support(relation).items()
        if pattern.matches(key)
    }
    for key, value in demanded.items():
        assert demand.instance.get(relation, key) == value, key
    # Over-demand is sound, wrong values never: every derived atom
    # carries exactly its full-fixpoint value.
    for key, value in demand.instance.support(relation).items():
        assert full.instance.get(relation, key) == value, key


class TestDifferentials:
    """Hypothesis differentials: 4 semirings × the kernel engines."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", sorted(SEMIRINGS), ids=str)
    @settings(max_examples=8, deadline=None)
    @given(edges=edge_sets, offset=st.integers(0, 6))
    def test_demanded_atoms_byte_identical(self, name, engine, edges, offset):
        db = weighted_db(name, edges, offset)
        prog = programs.apsp()
        full = solve(prog, db, method="seminaive", engine=engine)
        demand = solve(
            prog,
            db,
            method="seminaive",
            engine=engine,
            query=("T", ("a", None)),
        )
        assert demand.stats["demand_fallbacks"] == 0
        assert_demand_matches_full(demand, full, DemandQuery("T", ("a", None)))

    @settings(max_examples=10, deadline=None)
    @given(edges=edge_sets, offset=st.integers(0, 6))
    def test_naive_and_seminaive_demand_agree(self, edges, offset):
        db = weighted_db("TROP", edges, offset)
        prog = programs.apsp()
        naive = solve(prog, db, method="naive", query=("T", ("a", None)))
        semi = solve(prog, db, method="seminaive", query=("T", ("a", None)))
        assert naive.stats["demand_fallbacks"] == 0
        assert semi.stats["demand_fallbacks"] == 0
        assert naive.instance.equals(semi.instance)

    @settings(max_examples=8, deadline=None)
    @given(edges=edge_sets)
    def test_point_query_both_bound(self, edges):
        db = weighted_db("TROP", edges)
        full = solve(programs.apsp(), db, method="seminaive")
        demand = solve(
            programs.apsp(),
            db,
            method="seminaive",
            query=("T", ("a", "d")),
        )
        assert demand.stats["demand_fallbacks"] == 0
        assert_demand_matches_full(demand, full, DemandQuery("T", ("a", "d")))

    def test_string_query_through_solve(self):
        db = Database(
            pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
        )
        tup = solve(programs.apsp(), db, query=("T", ("a", None)))
        txt = solve(programs.apsp(), db, query="T(a,?)")
        assert txt.instance.equals(tup.instance)
        assert txt.instance.get("T", ("a", "d")) == 8.0

    def test_demand_solve_entry_point(self):
        db = Database(
            pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
        )
        result = demand_solve(
            programs.apsp(), db, ("T", ("a", None)), method="seminaive"
        )
        assert result.stats["demand_fallbacks"] == 0
        assert result.stats["demand_adornments"] >= 1
        assert result.stats["demand_magic_tuples"] >= 1
        # The auxiliary magic relations are stripped from the result.
        assert not [
            r
            for r in result.instance.relations()
            if r.startswith((MAGIC_PREFIX, VIEW_PREFIX))
        ]


# ---------------------------------------------------------------------------
# Counted fallbacks
# ---------------------------------------------------------------------------


class TestFallbacks:
    def _assert_fell_back(self, demand, full, needle):
        assert demand.stats["demand_fallbacks"] == 1
        assert needle in demand.stats["demand_unsupported"]
        assert demand.instance.equals(full.instance)

    def test_quadratic_tc_falls_back_to_full(self):
        edges = workloads.random_dag(7, 0.35, seed=11)
        db = Database(pops=BOOL, relations={"E": {e: True for e in edges}})
        prog = programs.quadratic_transitive_closure()
        full = solve(prog, db, method="seminaive")
        demand = solve(
            prog, db, method="seminaive", query=("T", (1, None))
        )
        self._assert_fell_back(demand, full, "IDB")

    def test_non_idempotent_pops_falls_back(self):
        edges = workloads.random_dag(7, 0.35, seed=2)
        db = Database(pops=NAT, relations={"E": {e: 1 for e in edges}})
        prog = programs.transitive_closure()
        # NAT lacks ⊖, so the fallback itself must stay naive.
        full = solve(prog, db, method="naive")
        demand = solve(prog, db, method="naive", query=("T", (1, None)))
        self._assert_fell_back(demand, full, "idempotent")

    def test_grounded_method_falls_back(self):
        db = Database(
            pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
        )
        full = solve(programs.apsp(), db, method="grounded")
        demand = solve(
            programs.apsp(), db, method="grounded", query=("T", ("a", None))
        )
        self._assert_fell_back(demand, full, "one-shot")

    def test_capture_trace_falls_back(self):
        db = Database(
            pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
        )
        full = solve(
            programs.apsp(), db, method="naive", capture_trace=True,
            schedule="monolithic",
        )
        demand = solve(
            programs.apsp(), db, method="naive", capture_trace=True,
            schedule="monolithic", query=("T", ("a", None)),
        )
        self._assert_fell_back(demand, full, "capture_trace")
        assert len(demand.trace) == len(full.trace)

    def test_malformed_query_still_raises(self):
        """Fallback covers unsupported fragments, not user errors."""
        db = Database(
            pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
        )
        with pytest.raises(DemandError, match="not an IDB"):
            solve(programs.apsp(), db, query=("Nope", ("a", None)))


# ---------------------------------------------------------------------------
# SCC-roots pruning under the multi-view program
# ---------------------------------------------------------------------------


class TestRootsPruning:
    def test_sibling_views_never_materialize(self):
        edges = workloads.power_law_digraph(80, 160, seed=5, alpha=0.8)
        prog = programs.graph_analytics()
        db = Database(pops=TROP, relations={"E": dict(edges)})
        source = max(a for a, _ in edges)
        full = solve(prog, db, method="seminaive")
        demand = solve(
            prog, db, method="seminaive", query=("T", (source, None))
        )
        assert demand.stats["demand_fallbacks"] == 0
        assert_demand_matches_full(
            demand, full, DemandQuery("T", (source, None))
        )
        # Full evaluation materializes every view; the demand path
        # prunes the condensation to T's stratum and below.
        for view in ("Rev", "C", "Out"):
            assert full.instance.support(view)
            assert not demand.instance.support(view)

    def test_demand_does_proportionally_less_work(self):
        edges = workloads.power_law_digraph(200, 500, seed=1, alpha=0.8)
        prog = programs.graph_analytics()
        db = Database(pops=TROP, relations={"E": dict(edges)})
        source = max(a for a, _ in edges)
        full = solve(prog, db, method="seminaive")
        demand = solve(
            prog, db, method="seminaive", query=("T", (source, None))
        )
        assert demand.stats["demand_fallbacks"] == 0
        assert (
            demand.stats["rule_applications"]
            < full.stats["rule_applications"]
        )
        assert demand.stats["keys_examined"] < full.stats["keys_examined"]
