"""Shared fixtures: value spaces, paper instances, program batteries."""

from __future__ import annotations

import pytest

from repro import core, programs, semirings, workloads
from repro.semirings import (
    BOOL,
    FOUR,
    FREE,
    LEX_NN,
    LIFTED_NAT,
    LIFTED_REAL,
    NAT,
    NAT_INF,
    REAL_PLUS,
    THREE,
    TROP,
    CompletedPOPS,
    PowersetPOPS,
    ProductPOPS,
    TropicalEtaSemiring,
    TropicalPSemiring,
)


@pytest.fixture(scope="session")
def trop_p1() -> TropicalPSemiring:
    return TropicalPSemiring(1)


@pytest.fixture(scope="session")
def trop_p2() -> TropicalPSemiring:
    return TropicalPSemiring(2)


@pytest.fixture(scope="session")
def trop_eta() -> TropicalEtaSemiring:
    return TropicalEtaSemiring(6.5)


@pytest.fixture(scope="session")
def all_pops() -> list:
    """Every POPS in the library (for axiom batteries)."""
    return [
        BOOL,
        NAT,
        NAT_INF,
        REAL_PLUS,
        TROP,
        TropicalPSemiring(0),
        TropicalPSemiring(1),
        TropicalPSemiring(2),
        TropicalEtaSemiring(0.0),
        TropicalEtaSemiring(2.0),
        LIFTED_REAL,
        LIFTED_NAT,
        CompletedPOPS(semirings.REAL),
        THREE,
        FOUR,
        PowersetPOPS(BOOL),
        PowersetPOPS(TROP),
        ProductPOPS(BOOL, TROP),
        LEX_NN,
        FREE,
    ]


@pytest.fixture()
def fig2a_trop_db() -> core.Database:
    """Fig. 2(a) edge weights over ``Trop+`` (Example 4.1)."""
    return core.Database(
        pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
    )


@pytest.fixture()
def bom_db() -> core.Database:
    """Fig. 2(b) bill-of-material instance over ``R⊥`` (Example 4.2)."""
    edges, costs = workloads.fig_2b_bom()
    return core.Database(
        pops=LIFTED_REAL,
        relations={"C": {(k,): v for k, v in costs.items()}},
        bool_relations={"E": set(edges)},
    )


@pytest.fixture()
def sssp_program() -> core.Program:
    return programs.sssp("a")


@pytest.fixture()
def tc_program() -> core.Program:
    return programs.transitive_closure()
