"""Cross-space engine matrix: one recursion, every suitable value space.

The paper's central promise — a single program text re-interpreted over
different POPS — is exercised exhaustively here: the SSSP/reachability
rule and the APSP/TC rule run over every compatible value space, each
checked against an independent oracle and (where supported) across
engines.  Also covers the §6.1 dioids (2^Ω, TropN) and product spaces
(simultaneous reachability + distance).
"""

from __future__ import annotations

import pytest

from repro import programs, workloads
from repro.core import Database, naive_fixpoint, seminaive_fixpoint
from repro.semirings import (
    BOOL,
    BOTTLENECK,
    INF,
    TROP,
    TROP_NAT,
    VITERBI,
    ProductPOPS,
    SetDioid,
)
from repro.semirings.properties import check_minus_laws, check_pops
from repro.semirings.stability import is_zero_stable


class TestNewDioids:
    def test_set_dioid_axioms(self):
        sd = SetDioid("xyz")
        assert check_pops(sd) is None
        assert check_minus_laws(sd, sd.sample_values()) is None
        assert is_zero_stable(sd)

    def test_trop_nat_axioms(self):
        assert check_pops(TROP_NAT) is None
        assert check_minus_laws(TROP_NAT, TROP_NAT.sample_values()) is None
        assert is_zero_stable(TROP_NAT)

    def test_set_dioid_minus_is_difference(self):
        sd = SetDioid("abc")
        assert sd.minus(sd.lift("a", "b"), sd.lift("b")) == sd.lift("a")

    def test_set_dioid_lift_validates(self):
        sd = SetDioid("ab")
        with pytest.raises(ValueError):
            sd.lift("z")


class TestSetDioidPropagation:
    """Which sources can reach each node — TC over 2^Ω."""

    def _run(self, method):
        # Edge (x, y) is annotated with Ω (no restriction); sources
        # inject their own singleton label via a unary seed relation.
        sources = {"s1", "s2"}
        sd = SetDioid(sources)
        edges = {("s1", "m"), ("s2", "m"), ("m", "t"), ("s1", "u")}
        seed = {("s1",): sd.lift("s1"), ("s2",): sd.lift("s2")}
        # L(x) :- Seed(x) ⊕ ⨁_z L(z) ⊗ E(z, x), with E over 2^Ω as Ω.
        from repro.core import Program, RelAtom, Rule, SumProduct, terms

        rule = Rule(
            "L",
            terms(["X"]),
            (
                SumProduct((RelAtom("Seed", terms(["X"])),)),
                SumProduct(
                    (
                        RelAtom("L", terms(["Z"])),
                        RelAtom("E", terms(["Z", "X"])),
                    )
                ),
            ),
        )
        program = Program(rules=[rule], edbs={"Seed": 1, "E": 2})
        db = Database(
            pops=sd,
            relations={
                "Seed": seed,
                "E": {e: sd.one for e in edges},
            },
        )
        if method == "naive":
            return sd, naive_fixpoint(program, db)
        return sd, seminaive_fixpoint(program, db)

    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_source_labels(self, method):
        sd, result = self._run(method)
        assert result.instance.get("L", ("m",)) == sd.lift("s1", "s2")
        assert result.instance.get("L", ("t",)) == sd.lift("s1", "s2")
        assert result.instance.get("L", ("u",)) == sd.lift("s1")


class TestTropNatHopCounts:
    def test_unit_weights_count_hops(self):
        edges = {e: 1 for e in workloads.line_edges(6)}
        db = Database(pops=TROP_NAT, relations={"E": edges})
        result = naive_fixpoint(programs.sssp(0), db)
        for node in range(1, 6):
            assert result.instance.get("L", (node,)) == node

    def test_seminaive_agrees(self):
        edges = {e: 1 for e in workloads.cycle_edges(7)}
        db = Database(pops=TROP_NAT, relations={"E": edges})
        prog = programs.apsp()
        assert seminaive_fixpoint(prog, db).instance.equals(
            naive_fixpoint(prog, db).instance
        )


class TestProductSpaceAnalysis:
    """Reachability and distance at once: ProductPOPS(B, Trop+)."""

    def test_pairwise_results(self):
        prod = ProductPOPS(BOOL, TROP)
        weights = workloads.fig_2a_graph()
        db = Database(
            pops=prod,
            relations={"E": {e: (True, w) for e, w in weights.items()}},
        )
        result = naive_fixpoint(programs.apsp(), db)
        reach, dist = result.instance.get("T", ("a", "d"))
        assert reach is True
        assert dist == 8.0
        # Absent pairs are (False, ∞) — the product bottom.
        assert result.instance.get("T", ("d", "a")) == (False, INF)

    def test_product_matches_componentwise_runs(self):
        prod = ProductPOPS(BOOL, TROP)
        edges = workloads.random_weighted_digraph(7, 0.3, seed=6)
        db = Database(
            pops=prod,
            relations={"E": {e: (True, w) for e, w in edges.items()}},
        )
        combined = naive_fixpoint(programs.apsp(), db)

        db_bool = Database(
            pops=BOOL, relations={"E": {e: True for e in edges}}
        )
        db_trop = Database(pops=TROP, relations={"E": dict(edges)})
        bools = naive_fixpoint(programs.apsp(), db_bool)
        trops = naive_fixpoint(programs.apsp(), db_trop)

        keys = set(combined.instance.support("T"))
        assert keys == set(bools.instance.support("T"))
        for key in keys:
            reach, dist = combined.instance.get("T", key)
            assert reach == bools.instance.get("T", key)
            assert dist == trops.instance.get("T", key)


ORACLE_CASES = [
    ("bool-reach", BOOL, lambda w: True),
    ("trop-shortest", TROP, lambda w: w),
    ("bottleneck-widest", BOTTLENECK, lambda w: w),
    ("viterbi-reliable", VITERBI, lambda w: min(w / 10.0, 1.0)),
    ("tropnat-hops", TROP_NAT, lambda w: 1),
]


@pytest.mark.parametrize("name,pops,lift", ORACLE_CASES, ids=lambda c: c if isinstance(c, str) else "")
def test_engines_agree_across_spaces(name, pops, lift):
    edges = workloads.random_weighted_digraph(8, 0.3, seed=99)
    db = Database(
        pops=pops,
        relations={"E": {e: lift(w) for e, w in edges.items()}},
    )
    prog = programs.apsp()
    naive = naive_fixpoint(prog, db)
    semi = seminaive_fixpoint(prog, db)
    assert semi.instance.equals(naive.instance), name
