"""The datalog° text parser."""

from __future__ import annotations

import pytest

from repro.core import (
    BoolAtom,
    Compare,
    Constant,
    FuncFactor,
    Indicator,
    KeyAsValue,
    ParseError,
    RelAtom,
    ValueConst,
    Variable,
    parse_program,
    tokenize,
)
from repro.core.ast import KeyFunc, TrueCond


class TestTokenizer:
    def test_basic_stream(self):
        toks = tokenize("T(X, Y) :- E(X, Y).")
        kinds = [t.kind for t in toks]
        assert kinds[:4] == ["name", "punct", "name", "punct"]
        assert "implies" in kinds
        assert kinds[-1] == "eof"

    def test_comments_and_whitespace(self):
        toks = tokenize("// nothing\nT(X) :- E(X). # trailing\n")
        assert all(t.kind not in ("ws", "comment") for t in toks)

    def test_numbers_and_strings(self):
        toks = tokenize("3 4.5 -2 'hi there'")
        assert [t.kind for t in toks[:-1]] == ["number"] * 3 + ["string"]

    def test_line_tracking(self):
        toks = tokenize("a\nbb\n  ccc")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3 and toks[2].col == 3

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as err:
            tokenize("T(X) :- ?")
        assert "line 1" in str(err.value)


class TestParser:
    def test_transitive_closure(self):
        prog = parse_program("T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y).")
        assert len(prog.rules) == 1
        rule = prog.rules[0]
        assert rule.head_relation == "T"
        assert rule.bodies[0].factors == (RelAtom("E", (Variable("X"), Variable("Y"))),)
        assert len(rule.bodies[1].factors) == 2

    def test_declarations(self):
        prog = parse_program(
            """
            edb C/1.
            bool E/2.
            idb T/1.
            T(X) :- C(X) | { T(Y) if E(X, Y) }.
            """
        )
        assert prog.edbs["C"] == 1
        assert prog.bool_edbs["E"] == 2
        assert prog.idbs["T"] == 1

    def test_conditional_body(self):
        prog = parse_program("T(X) :- { C(Y) if E(X, Y) and Y != X }.")
        body = prog.rules[0].bodies[0]
        assert isinstance(body.condition.parts[0], BoolAtom)
        assert isinstance(body.condition.parts[1], Compare)

    def test_indicator_and_constants(self):
        prog = parse_program("L(X) :- [X = a] | L(Z) * E(Z, X).")
        ind = prog.rules[0].bodies[0].factors[0]
        assert isinstance(ind, Indicator)
        assert ind.condition == Compare("==", Variable("X"), Constant("a"))

    def test_value_constant(self):
        prog = parse_program("X(u) :- $1 | Cval(u) * X(u).")
        vc = prog.rules[0].bodies[0].factors[0]
        assert vc == ValueConst(1)

    def test_float_and_string_constants(self):
        prog = parse_program("R(X) :- E(X, 2.5) | E(X, 'n one').")
        atom = prog.rules[0].bodies[0].factors[0]
        assert atom.args[1] == Constant(2.5)
        atom2 = prog.rules[0].bodies[1].factors[0]
        assert atom2.args[1] == Constant("n one")

    def test_interpreted_value_function(self):
        prog = parse_program("Win(X) :- { E(X, Y) * not(Win(Y)) }.")
        fn = prog.rules[0].bodies[0].factors[1]
        assert isinstance(fn, FuncFactor)
        assert fn.name == "not"
        assert isinstance(fn.args[0], RelAtom)

    def test_key_as_value(self):
        prog = parse_program("S(X, Y) :- { val(C) if Length(X, Y, C) }.")
        kv = prog.rules[0].bodies[0].factors[0]
        assert isinstance(kv, KeyAsValue)
        assert kv.convert is None
        prog2 = parse_program("S(X) :- { val(C, to_trop) if L(X, C) }.")
        assert prog2.rules[0].bodies[0].factors[0].convert == "to_trop"

    def test_key_function_resolution(self):
        prog = parse_program(
            "W(I) :- { W(pred(I)) if Idx(I) and I > 0 }"
            " | { V(I) if Idx(I) }.",
            key_functions={"pred": lambda i: i - 1},
        )
        atom = prog.rules[0].bodies[0].factors[0]
        assert isinstance(atom.args[0], KeyFunc)
        assert atom.args[0].fn(5) == 4

    def test_unknown_key_function(self):
        with pytest.raises(ParseError) as err:
            parse_program("W(I) :- { W(pred(I)) if Idx(I) }.")
        assert "pred" in str(err.value)

    def test_or_and_not_conditions(self):
        prog = parse_program(
            "T(X) :- { C(X) if (A(X) or B(X)) and not D(X) }."
        )
        cond = prog.rules[0].bodies[0].condition
        assert cond.variables() == {"X"}

    def test_unconditioned_braces(self):
        prog = parse_program("T(X) :- { C(X) }.")
        assert isinstance(prog.rules[0].bodies[0].condition, TrueCond)

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_program("T(X) :- C(X)")

    def test_garbage_factor(self):
        with pytest.raises(ParseError):
            parse_program("T(X) :- | .")

    def test_true_condition_keyword(self):
        prog = parse_program("T(X) :- { C(X) if true }.")
        assert isinstance(prog.rules[0].bodies[0].condition, TrueCond)


class TestCaseStatements:
    def test_case_rule_desugaring(self):
        prog = parse_program(
            """
            W(I) :- case I = 0 : V(0) ;
                    I > 0 and Idx(I) : W(pred(I)) ;
                    else : V(I).
            """,
            key_functions={"pred": lambda i: i - 1},
        )
        rule = prog.rules[0]
        assert len(rule.bodies) == 3
        # Later branches carry the negations of earlier conditions.
        assert "¬" in str(rule.bodies[1].condition)
        assert str(rule.bodies[2].condition).count("¬") == 2

    def test_case_rule_runs_prefix_sum(self):
        from repro.core import Database, naive_fixpoint
        from repro.semirings import NAT

        prog = parse_program(
            """
            W(I) :- case I = 0 : V(0) ;
                    I > 0 and Idx(I) : W(pred(I)) ;
                    I > 0 and Idx(I) : V(I).
            """,
            key_functions={"pred": lambda i: i - 1},
        )
        # The second and third branches share a condition, so the
        # desugaring makes the third unreachable (¬C₂ ∧ C₂); encode the
        # ⊕ within one branch instead via two rules:
        prog2 = parse_program(
            """
            W(I) :- { V(0) if I = 0 }
                  | { W(pred(I)) if I > 0 and Idx(I) }
                  | { V(I) if I > 0 and Idx(I) }.
            """,
            key_functions={"pred": lambda i: i - 1},
        )
        values = [3, 1, 4, 1, 5]
        db = Database(
            pops=NAT,
            relations={"V": {(i,): v for i, v in enumerate(values)}},
            bool_relations={"Idx": {(i,) for i in range(len(values))}},
        )
        result = naive_fixpoint(prog2, db)
        acc = 0
        for i, v in enumerate(values):
            acc += v
            assert result.instance.get("W", (i,)) == acc
        del prog

    def test_case_missing_colon(self):
        with pytest.raises(ParseError):
            parse_program("W(I) :- case I = 0 V(0).")

    def test_semicolon_requires_more_branches(self):
        with pytest.raises(ParseError):
            parse_program("W(I) :- case I = 0 : V(0) ; .")
