"""Semi-naïve evaluation (Section 6): correctness and efficiency."""

from __future__ import annotations

import pytest

from repro import programs, workloads
from repro.core import (
    Database,
    SemiNaiveError,
    SemiNaiveEvaluator,
    naive_fixpoint,
    seminaive_fixpoint,
)
from repro.core.rules import FuncFactor, Program, RelAtom, Rule, SumProduct
from repro.core.ast import terms
from repro.semirings import BOOL, TROP, TropicalPSemiring


def _bool_db(edges) -> Database:
    return Database(pops=BOOL, relations={"E": {e: True for e in edges}})


class TestTheorem64Equivalence:
    """Semi-naïve returns the same answer as naïve (Theorem 6.4)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_linear_tc_over_bool(self, seed):
        edges = workloads.random_dag(8, 0.3, seed=seed)
        db = _bool_db(edges)
        prog = programs.transitive_closure()
        assert seminaive_fixpoint(prog, db).instance.equals(
            naive_fixpoint(prog, db).instance
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_quadratic_tc_over_bool(self, seed):
        """Example 6.6: two IDB occurrences, handled by the variant sum."""
        edges = workloads.random_dag(7, 0.35, seed=seed)
        db = _bool_db(edges)
        prog = programs.quadratic_transitive_closure()
        assert seminaive_fixpoint(prog, db).instance.equals(
            naive_fixpoint(prog, db).instance
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_apsp_over_trop(self, seed):
        edges = workloads.random_weighted_digraph(7, 0.35, seed=seed)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        prog = programs.apsp()
        assert seminaive_fixpoint(prog, db).instance.equals(
            naive_fixpoint(prog, db).instance
        )

    def test_sssp_paper_graph(self, sssp_program, fig2a_trop_db):
        semi = seminaive_fixpoint(sssp_program, fig2a_trop_db)
        naive = naive_fixpoint(sssp_program, fig2a_trop_db)
        assert semi.instance.equals(naive.instance)

    def test_cycle_graph_apsp(self):
        edges = workloads.cycle_edges(6, weight=2.0)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        prog = programs.apsp()
        assert seminaive_fixpoint(prog, db).instance.equals(
            naive_fixpoint(prog, db).instance
        )


class TestRestrictions:
    def test_rejects_non_dioid_pops(self, bom_db):
        with pytest.raises(SemiNaiveError) as err:
            seminaive_fixpoint(programs.bill_of_material(), bom_db)
        assert "R⊥" in str(err.value)

    def test_rejects_tropp(self):
        tp = TropicalPSemiring(1)
        db = Database(pops=tp, relations={"E": {("a", "b"): tp.singleton(1.0)}})
        with pytest.raises(SemiNaiveError):
            seminaive_fixpoint(programs.apsp(), db)

    def test_rejects_idb_under_function(self):
        rule = Rule(
            "T",
            terms(["X"]),
            (
                SumProduct(
                    (FuncFactor("ident", (RelAtom("T", terms(["X"])),)),)
                ),
            ),
        )
        prog = Program(rules=[rule])
        db = Database(pops=BOOL, relations={})
        with pytest.raises(SemiNaiveError) as err:
            seminaive_fixpoint(prog, db)
        assert "affinity" in str(err.value)


class TestEfficiency:
    def test_fewer_products_than_naive_on_chains(self):
        """On a long path the delta shrinks to a frontier; semi-naïve
        does asymptotically less work (the point of Section 6)."""
        edges = workloads.line_edges(24)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        prog = programs.sssp(0)
        naive = naive_fixpoint(prog, db)
        semi = seminaive_fixpoint(prog, db)
        assert semi.instance.equals(naive.instance)
        assert semi.stats["products"] < naive.stats["products"] / 3

    def test_delta_trace_monotone(self, fig2a_trop_db):
        result = seminaive_fixpoint(
            programs.sssp("a"), fig2a_trop_db, capture_trace=True
        )
        for earlier, later in zip(result.trace, result.trace[1:]):
            assert earlier.leq(later)


class TestDifferentialRuleDetails:
    def test_eq65_static_bodies_evaluated_once(self):
        """EDB-only bodies contribute only through the bootstrap ICO."""
        edges = workloads.line_edges(5)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        evaluator = SemiNaiveEvaluator(programs.apsp(), db)
        result = evaluator.run()
        naive = naive_fixpoint(programs.apsp(), db)
        assert result.instance.equals(naive.instance)

    def test_immediate_fixpoint_on_empty_database(self):
        db = Database(pops=TROP, relations={"E": {}})
        result = seminaive_fixpoint(programs.apsp(), db)
        assert result.instance.size() == 0

    def test_steps_close_to_naive(self, fig2a_trop_db):
        """Both algorithms iterate the same chain J⁽ᵗ⁾ (Theorem 6.4)."""
        prog = programs.sssp("a")
        naive = naive_fixpoint(prog, fig2a_trop_db)
        semi = seminaive_fixpoint(prog, fig2a_trop_db)
        assert abs(semi.steps - naive.steps) <= 1
