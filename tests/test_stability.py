"""Stability theory (Section 5.1): probes, Propositions 5.2–5.4."""

from __future__ import annotations

import pytest

from repro.semirings import (
    BOOL,
    LIFTED_REAL,
    NAT,
    NAT_INF,
    REAL_PLUS,
    THREE,
    TROP,
    TropicalEtaSemiring,
    TropicalPSemiring,
)
from repro.semirings.stability import (
    StabilityReport,
    core_is_trivial,
    element_stability_index,
    is_p_stable_element,
    is_zero_stable,
    semiring_stability_index,
)


class TestElementProbes:
    def test_boolean_elements_are_zero_stable(self):
        for c in (False, True):
            report = element_stability_index(BOOL, c)
            assert report == StabilityReport(True, 0, 64)

    def test_unstable_element_exhausts_budget(self):
        report = element_stability_index(NAT, 1, budget=10)
        assert not report.stable
        assert report.index is None
        assert report.budget == 10

    def test_geometric_consistency(self):
        """The probe's index agrees with direct c^(p) = c^(p+1) checks."""
        tp = TropicalPSemiring(2)
        c = tp.from_values([1.0, 2.0, 5.0])
        report = element_stability_index(tp, c)
        assert report.stable
        p = report.index
        assert is_p_stable_element(tp, c, p)
        if p > 0:
            assert not is_p_stable_element(tp, c, p - 1)

    def test_eq_31_once_stable_always_stable(self):
        tp = TropicalPSemiring(1)
        c = tp.from_values([2.0])
        report = element_stability_index(tp, c)
        p = report.index
        base = tp.geometric(c, p)
        for q in range(p + 1, p + 6):
            assert tp.eq(tp.geometric(c, q), base)


class TestSemiringProbes:
    def test_uniform_stability_of_tropp(self):
        for p in range(4):
            tp = TropicalPSemiring(p)
            report = semiring_stability_index(tp)
            assert report.stable
            assert report.index == p

    def test_trop_eta_has_no_uniform_index_on_small_elements(self):
        te = TropicalEtaSemiring(1.0)
        witnesses = [te.singleton(1.0 / k) for k in (1, 2, 4, 8)]
        report = semiring_stability_index(te, witnesses=witnesses, budget=100)
        assert report.stable
        assert report.index == 8  # grows with the witness set: not uniform

    def test_naturals_probe_reports_unstable(self):
        report = semiring_stability_index(NAT, budget=16)
        assert not report.stable

    def test_nat_inf_unstable(self):
        report = semiring_stability_index(NAT_INF, budget=16)
        assert not report.stable


class TestZeroStability:
    @pytest.mark.parametrize("structure", [BOOL, TROP], ids=lambda s: s.name)
    def test_zero_stable_structures(self, structure):
        assert is_zero_stable(structure)

    @pytest.mark.parametrize(
        "structure", [NAT, NAT_INF, REAL_PLUS], ids=lambda s: s.name
    )
    def test_not_zero_stable(self, structure):
        assert not is_zero_stable(structure)

    def test_tropp_not_zero_stable_for_positive_p(self):
        assert not is_zero_stable(TropicalPSemiring(1))
        assert is_zero_stable(TropicalPSemiring(0))


class TestCores:
    def test_lifted_cores_trivial(self):
        assert core_is_trivial(LIFTED_REAL)

    def test_naturally_ordered_cores_not_trivial(self):
        assert not core_is_trivial(TROP)
        assert not core_is_trivial(BOOL)

    def test_three_core_zero_stable(self):
        core = THREE.core_semiring()
        assert is_zero_stable(core, witnesses=tuple(core.sample_values()))


class TestProposition52:
    """If 1 is p-stable the semiring is naturally ordered.

    We verify the contrapositive flavour on our structures: every
    structure whose 1 is p-stable in the library is indeed flagged (and
    behaves) naturally ordered; N, whose order is natural, has unstable
    elements but a 0-stable 1?  No: 1^(p) = p+1 keeps growing — the
    hypothesis fails and nothing is implied.
    """

    @pytest.mark.parametrize(
        "structure",
        [BOOL, TROP, TropicalPSemiring(1), TropicalPSemiring(2)],
        ids=lambda s: s.name,
    )
    def test_one_stable_implies_naturally_ordered(self, structure):
        report = element_stability_index(structure, structure.one)
        assert report.stable
        assert structure.is_naturally_ordered

    def test_n_has_unstable_one(self):
        report = element_stability_index(NAT, NAT.one, budget=16)
        assert not report.stable
