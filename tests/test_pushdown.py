"""Condition pushdown, value-carrying probes, adaptive statistics.

Covers the three layers added on top of indexed join planning:

* :mod:`repro.core.pushdown` — conjunct decomposition, equality
  bindings, fallback scheduling, and the *yield-set invariance*
  property: pushing filters never changes the enumerated valuations
  (hypothesis differential against ``plan="naive"``);
* value-carrying :class:`~repro.core.indexes.KeyIndex` entries and the
  ``slot_values`` plumbing that lets ``FactorEvaluator`` skip the
  second hash lookup on probed paths;
* adaptive selectivity estimates fed by true distinct counts and
  observed probe hit rates;
* engine-level differential tests (THREE / lifted / tropical,
  including non-naturally-ordered POPS where guard skipping is
  unsound) asserting byte-identical fixpoints between the pushdown
  pipeline and the untouched ``plan="naive"`` baseline.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import programs, workloads
from repro.core import Database, HybridEvaluator, solve
from repro.core.ast import (
    BoolAtom,
    Compare,
    Constant,
    KeyFunc,
    Not,
    Or,
    TrueCond,
    terms,
    var,
)
from repro.core.indexes import NO_VALUE, JoinStats, KeyIndex
from repro.core.pushdown import (
    compile_schedule,
    equality_binding,
    flatten_conjuncts,
)
from repro.core.rules import (
    FuncFactor,
    Indicator,
    Program,
    RelAtom,
    Rule,
    SumProduct,
)
from repro.core.valuations import (
    Guard,
    enumerate_valuations,
    pushable_indicator_conditions,
)
from repro.semirings import BOOL, LIFTED_REAL, REAL_PLUS, THREE, TROP


def valuation_set(iterator):
    return {frozenset(v.items()) for v in iterator}


class TestConjunctDecomposition:
    def test_flatten_nested_and(self):
        a = Compare("==", var("X"), Constant(1))
        b = Compare("!=", var("Y"), Constant(2))
        c = BoolAtom("B", terms(["Z"]))
        cond = (a & b) & c
        assert flatten_conjuncts(cond) == (a, b, c)

    def test_or_and_not_stay_atomic(self):
        a = Compare("==", var("X"), Constant(1))
        b = Compare("==", var("Y"), Constant(2))
        cond = Or((a, b)) & Not(a)
        parts = flatten_conjuncts(cond)
        assert len(parts) == 2
        assert isinstance(parts[0], Or)
        assert isinstance(parts[1], Not)

    def test_true_cond_is_empty(self):
        assert flatten_conjuncts(TrueCond()) == ()

    def test_equality_binding_orientations(self):
        assert equality_binding(Compare("==", var("X"), Constant(3))) == (
            "X",
            Constant(3),
        )
        assert equality_binding(Compare("==", Constant(3), var("X"))) == (
            "X",
            Constant(3),
        )
        # X == X defines nothing (the term mentions the variable).
        assert equality_binding(Compare("==", var("X"), var("X"))) is None
        # Inequalities define nothing.
        assert equality_binding(Compare("<", var("X"), Constant(3))) is None


class TestScheduleCompilation:
    def test_equality_becomes_fallback_binding(self):
        cond = Compare("==", var("Y"), var("X"))
        schedule = compile_schedule(cond, (), set(), (), ["X", "Y"])
        steps = {s.var: s for s in schedule.fallback}
        assert steps["X"].binding is None
        assert steps["Y"].binding == var("X")
        assert schedule.residual == ()

    def test_var_var_equality_binds_whichever_side_is_later(self):
        # X is pre-bound: X == Y must bind Y (the right-hand reading).
        cond = Compare("==", var("X"), var("Y"))
        schedule = compile_schedule(cond, (), {"X"}, (), ["Y"])
        assert schedule.initial_bindings == (("Y", var("X"), True),)
        assert schedule.fallback == ()

    def test_base_decidable_equality_binds_initially(self):
        cond = Compare("==", var("X"), Constant(7))
        schedule = compile_schedule(cond, (), set(), (), ["X"])
        assert schedule.initial_bindings == (("X", Constant(7), True),)
        assert schedule.fallback == ()

    def test_filter_attaches_to_earliest_variable(self):
        cond = Compare("!=", var("X"), Constant(0)) & Compare(
            "<", var("X"), var("Z")
        )
        schedule = compile_schedule(cond, (), set(), (), ["X", "Y", "Z"])
        by_var = {s.var: s.filters for s in schedule.fallback}
        assert len(by_var["X"]) == 1  # X != 0 the moment X binds
        assert len(by_var["Y"]) == 0
        assert len(by_var["Z"]) == 1  # X < Z once both are bound

    def test_bool_guard_conjunct_is_consumed(self):
        atom = BoolAtom("B", terms(["X"]))
        guard = Guard(args=atom.args, keys=lambda: [("a",)], name="bool:B")
        schedule = compile_schedule(atom, (), set(), (guard,), ["X"])
        assert schedule.step_filters == ((),)
        assert schedule.residual == ()


class TestFallbackExecution:
    """The incremental per-variable loop against the seed product."""

    def run_both(self, variables, guards, domain, cond, bool_lookup=None):
        lookup = bool_lookup or (lambda r, k: False)
        out = []
        for plan in ("indexed", "naive"):
            out.append(
                valuation_set(
                    enumerate_valuations(
                        variables, guards, domain, cond, lookup, plan=plan
                    )
                )
            )
        assert out[0] == out[1]
        return out[0]

    def test_equality_binding_skips_domain_enumeration(self):
        stats = JoinStats()
        cond = Compare("==", var("X"), Constant("b"))
        vals = list(
            enumerate_valuations(
                ["X"], [], ["a", "b", "c"], cond, lambda r, k: False,
                stats=stats,
            )
        )
        assert vals == [{"X": "b"}]
        assert stats.equality_bindings == 1
        assert stats.fallback_candidates == 0

    def test_equality_binding_outside_domain_yields_nothing(self):
        cond = Compare("==", var("X"), Constant("zz"))
        assert (
            self.run_both(["X"], [], ["a", "b"], cond) == set()
        )

    def test_conflicting_equalities_yield_nothing(self):
        cond = Compare("==", var("X"), Constant("a")) & Compare(
            "==", var("X"), Constant("b")
        )
        assert self.run_both(["X"], [], ["a", "b"], cond) == set()

    def test_chained_equalities_bind_transitively(self):
        cond = Compare("==", var("X"), Constant("a")) & Compare(
            "==", var("Y"), var("X")
        )
        vals = self.run_both(["X", "Y"], [], ["a", "b"], cond)
        assert vals == {frozenset({("X", "a"), ("Y", "a")})}

    def test_keyfunc_equality_binding(self):
        succ = KeyFunc("succ", lambda v: v + 1, (var("X"),))
        cond = Compare("==", var("Y"), succ)
        vals = self.run_both(["X", "Y"], [], [0, 1, 2], cond)
        assert vals == {
            frozenset({("X", 0), ("Y", 1)}),
            frozenset({("X", 1), ("Y", 2)}),
        }

    def test_pruning_happens_before_inner_variables(self):
        stats = JoinStats()
        cond = Compare("==", var("X"), Constant("a")) & Compare(
            "!=", var("Y"), var("X")
        )
        domain = ["a", "b", "c", "d"]
        vals = list(
            enumerate_valuations(
                ["X", "Y", "Z"], [], domain, cond, lambda r, k: False,
                stats=stats,
            )
        )
        assert len(vals) == 3 * 4  # Y ∈ {b,c,d} × Z ∈ domain
        # The seed would have touched 4³ = 64 complete candidates.
        assert stats.fallback_candidates == 12

    def test_guard_plus_residual_or_condition(self):
        guard = Guard(args=terms(["X"]), keys=lambda: [("a",), ("b",)])
        cond = Or(
            (
                Compare("==", var("Y"), Constant("u")),
                Compare("==", var("X"), Constant("b")),
            )
        )
        vals = self.run_both(["X", "Y"], [guard], ["u", "v"], cond)
        assert vals == {
            frozenset({("X", "a"), ("Y", "u")}),
            frozenset({("X", "b"), ("Y", "u")}),
            frozenset({("X", "b"), ("Y", "v")}),
        }

    def test_arity_mismatch_is_counted_not_silent(self):
        stats = JoinStats()
        guard = Guard(args=terms(["X"]), keys=lambda: [("a", "b"), ("c",)])
        for plan in ("indexed", "naive"):
            plan_stats = JoinStats()
            vals = list(
                enumerate_valuations(
                    ["X"], [guard], [], TrueCond(), lambda r, k: False,
                    plan=plan, stats=plan_stats,
                )
            )
            assert vals == [{"X": "c"}]
            assert plan_stats.arity_skips == 1
        del stats


# ---------------------------------------------------------------------------
# Property: pushdown never changes the yielded valuation set.
# ---------------------------------------------------------------------------

_DOMAIN = ["a", "b", "c", "d"]
_VARS = ["X", "Y", "Z"]

_term = st.one_of(
    st.sampled_from(_VARS).map(var),
    st.sampled_from(_DOMAIN).map(Constant),
)
_compare = st.builds(
    Compare,
    st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
    _term,
    _term,
)
_bool_atom = st.builds(
    lambda v: BoolAtom("B", (var(v),)), st.sampled_from(_VARS)
)
_leaf = st.one_of(_compare, _bool_atom)
_conjunct = st.one_of(
    _leaf,
    _leaf.map(Not),
    st.tuples(_leaf, _leaf).map(Or),
)
_condition = st.lists(_conjunct, max_size=4).map(
    lambda parts: TrueCond() if not parts else (
        parts[0] if len(parts) == 1 else __import__(
            "repro.core.ast", fromlist=["And"]
        ).And(tuple(parts))
    )
)
_guard_keys = st.lists(
    st.tuples(st.sampled_from(_DOMAIN), st.sampled_from(_DOMAIN)),
    max_size=6,
).map(lambda keys: list(dict.fromkeys(keys)))
_bool_facts = st.sets(st.sampled_from(_DOMAIN), max_size=3)


class TestPushdownInvariance:
    @settings(max_examples=120, deadline=None)
    @given(_condition, _guard_keys, _bool_facts, st.booleans())
    def test_yield_set_matches_naive(self, condition, keys, facts, use_guard):
        guards = []
        if use_guard:
            guards.append(Guard(args=terms(["X", "Y"]), keys=lambda: keys))
        lookup = lambda rel, key: rel == "B" and key[0] in facts

        sets = {}
        for plan in ("indexed", "naive"):
            sets[plan] = valuation_set(
                enumerate_valuations(
                    _VARS, guards, _DOMAIN, condition, lookup, plan=plan
                )
            )
        assert sets["indexed"] == sets["naive"]

    @settings(max_examples=60, deadline=None)
    @given(_condition, _guard_keys, _bool_facts)
    def test_indexed_never_does_more_fallback_work(self, condition, keys, facts):
        lookup = lambda rel, key: rel == "B" and key[0] in facts
        counters = {}
        for plan in ("indexed", "naive"):
            stats = JoinStats()
            list(
                enumerate_valuations(
                    _VARS,
                    [Guard(args=terms(["X", "Y"]), keys=lambda: keys)],
                    _DOMAIN,
                    condition,
                    lookup,
                    plan=plan,
                    stats=stats,
                )
            )
            counters[plan] = stats.fallback_candidates
        assert counters["indexed"] <= counters["naive"]


# ---------------------------------------------------------------------------
# Value-carrying indexes and zero-secondary-lookup factor evaluation.
# ---------------------------------------------------------------------------


class TestValueCarryingIndex:
    def test_mapping_feed_carries_values(self):
        index = KeyIndex({("a",): 1.0, ("b",): 2.0})
        assert index.has_values
        entries = index.probe_entries((0,), ("a",))
        assert [tuple(e) for e in entries] == [(("a",), 1.0)]

    def test_key_only_feed_has_no_values(self):
        index = KeyIndex([("a",), ("b",)])
        assert not index.has_values
        (entry,) = index.probe_entries((0,), ("a",))
        assert entry[1] is NO_VALUE

    def test_value_update_in_place_visible_through_buckets(self):
        index = KeyIndex({("a",): 5.0})
        (entry,) = index.probe_entries((0,), ("a",))
        assert entry[1] == 5.0
        assert index.add(("a",), 3.0) is False  # existing key: update
        (entry,) = index.probe_entries((0,), ("a",))
        assert entry[1] == 3.0

    def test_probe_compat_shim_returns_keys(self):
        index = KeyIndex({("a", "b"): 1.0, ("a", "c"): 2.0})
        assert list(index.probe((0,), ("a",))) == [("a", "b"), ("a", "c")]

    def test_naive_engine_rides_probes(self):
        edges = workloads.line_edges(10)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        result = solve(programs.apsp(), db, plan="indexed")
        assert result.stats["factor_lookups"] == 0
        assert result.stats["value_probe_hits"] > 0

    def test_seminaive_rides_probes_with_fresh_delta_values(self):
        edges = workloads.line_edges(10)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        indexed = solve(programs.sssp(0), db, method="seminaive", plan="indexed")
        seed = solve(programs.sssp(0), db, method="seminaive", plan="naive")
        assert indexed.instance.equals(seed.instance)
        assert indexed.stats["factor_lookups"] == 0
        assert indexed.stats["value_probe_hits"] > 0


class TestAdaptiveEstimates:
    def test_built_table_reports_true_distinct_count(self):
        index = KeyIndex([(i % 2, i) for i in range(20)])
        # Small index: the exact distinct projection count (2 groups)
        # is available even before the mask map is built.
        assert index.estimate((0,)) == 10.0
        index.probe_entries((0,), (0,))
        assert index.distinct_count((0,)) == 2
        assert index.estimate((0,)) == 10.0

    def test_exact_count_invalidated_by_inserts(self):
        index = KeyIndex([(0, i) for i in range(8)])
        assert index.estimate((0,)) == 8.0  # one group
        index.add((1, 99))
        assert index.estimate((0,)) == 9 / 2  # two groups now

    def test_observed_hit_rate_overrides_distinct_count(self):
        index = KeyIndex([(0, i) for i in range(10)])
        for _ in range(4):
            index.probe_entries((0,), (99,))  # all misses
        assert index.estimate((0,)) == 0.0

    def test_submask_distinct_counts_refine_unbuilt_masks(self):
        # Beyond _EXACT_COUNT_LIMIT the exact-count tier bows out and
        # built submask tables refine the static guess instead.
        index = KeyIndex([(i, i, i) for i in range(600)])
        index.probe_entries((0,), (0,))  # builds mask (0,): 600 distinct
        # (0, 1) unbuilt: the (0,) submask's 600 groups beat 4² = 16.
        assert index.estimate((0, 1)) == 600 / (600 * 4)

    def test_rebuilt_index_inherits_decayed_observations(self):
        from repro.core.indexes import IndexManager

        manager = IndexManager()
        first = manager.get("r", {(0, i): float(i) for i in range(8)}, version=1)
        for _ in range(8):
            first.probe_entries((0,), (0,))
        rebuilt = manager.get("r", {(0, i): float(i) for i in range(8)}, version=2)
        assert rebuilt is not first
        # Half the sample survives: 4 probes × 8 entries each.
        assert rebuilt.estimate((0,)) == 8.0


# ---------------------------------------------------------------------------
# Indicator extraction: the bracket's condition as a pushable filter.
# ---------------------------------------------------------------------------


class TestIndicatorExtraction:
    def _sssp_body(self):
        return programs.sssp(0).rules[0].bodies[0]

    def test_extracted_over_semiring_with_total_heads(self):
        body = self._sssp_body()
        assert pushable_indicator_conditions(body, TROP, total_heads=False)
        assert pushable_indicator_conditions(body, THREE, total_heads=True)

    def test_not_extracted_when_zero_is_observable(self):
        body = self._sssp_body()
        # THREE without head totalization: absent (⊥) ≠ 0, skipping the
        # zero contribution would be observable.
        assert pushable_indicator_conditions(body, THREE, total_heads=False) == ()
        # Non-semirings never absorb through 0.
        assert (
            pushable_indicator_conditions(body, LIFTED_REAL, total_heads=True)
            == ()
        )

    def test_explicit_nonzero_false_value_not_extracted(self):
        body = SumProduct(
            (Indicator(Compare("==", var("X"), Constant(0)), false_value=1.0),)
        )
        assert pushable_indicator_conditions(body, TROP, total_heads=False) == ()

    def test_sssp_fallback_collapses_to_source(self):
        edges = workloads.line_edges(15)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        indexed = solve(programs.sssp(0), db, plan="indexed")
        seed = solve(programs.sssp(0), db, plan="naive")
        assert indexed.instance.equals(seed.instance)
        assert indexed.stats["fallback_candidates"] == 0
        assert indexed.stats["equality_bindings"] > 0
        assert seed.stats["fallback_candidates"] > 0


# ---------------------------------------------------------------------------
# Engine-level differentials on the paper's workloads.
# ---------------------------------------------------------------------------


def _assert_plans_agree(prog, db, methods=("naive",), **kwargs):
    for method in methods:
        indexed = solve(prog, db, method=method, plan="indexed", **kwargs)
        naive = solve(prog, db, method=method, plan="naive", **kwargs)
        assert indexed.instance.equals(naive.instance), method
        assert indexed.steps == naive.steps, method


class TestEngineDifferentials:
    def test_three_winmove_trace_identical(self):
        edges = workloads.fig_4_edges()
        results = {}
        for plan in ("indexed", "naive"):
            from repro.core.naive import NaiveEvaluator
            from repro.semirings.three import three_not
            from repro.semirings.base import FunctionRegistry

            registry = FunctionRegistry()
            registry.register("not", three_not)
            rule = Rule(
                "Win",
                terms(["X"]),
                (
                    SumProduct(
                        (
                            RelAtom("E", terms(["X", "Y"])),
                            FuncFactor("not", (RelAtom("Win", terms(["Y"])),)),
                        )
                    ),
                ),
            )
            program = Program(rules=[rule], bool_edbs={"E": 2})
            database = Database(
                pops=THREE, bool_relations={"E": set(map(tuple, edges))}
            )
            evaluator = NaiveEvaluator(
                program, database, functions=registry, plan=plan
            )
            results[plan] = evaluator.run(capture_trace=True)
        assert results["indexed"].instance.equals(results["naive"].instance)
        assert results["indexed"].steps == results["naive"].steps
        for a, b in zip(results["indexed"].trace, results["naive"].trace):
            assert a.equals(b)

    def test_lifted_bill_of_material(self):
        db = Database(
            pops=LIFTED_REAL,
            relations={"C": {("a",): 1.0, ("b",): 2.0, ("c",): 4.0}},
            bool_relations={"E": {("a", "b"), ("b", "c")}},
        )
        _assert_plans_agree(programs.bill_of_material(), db)

    def test_prefix_sum_real_plus(self):
        n = 6
        db = Database(
            pops=REAL_PLUS,
            relations={"V": {(i,): float(i + 1) for i in range(n)}},
            bool_relations={"Idx": {(i,) for i in range(n)}},
        )
        _assert_plans_agree(programs.prefix_sum(length=n), db)
        result = solve(programs.prefix_sum(length=n), db, plan="indexed")
        assert result.instance.get("W", (n - 1,)) == sum(
            float(i + 1) for i in range(n)
        )

    def test_tropical_sssp_all_methods(self):
        edges = workloads.line_edges(12)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        _assert_plans_agree(
            programs.sssp(0), db, methods=("naive", "seminaive", "grounded")
        )

    def test_boolean_tc_all_methods(self):
        dag = workloads.random_dag(10, 0.25, seed=23)
        db = Database(pops=BOOL, relations={"E": {e: True for e in dag}})
        _assert_plans_agree(
            programs.transitive_closure(),
            db,
            methods=("naive", "seminaive", "grounded"),
        )

    def test_hybrid_threshold_differential(self):
        # Example 4.3 shape: ownership over R+, control via threshold.
        from repro.core.extensions import ThresholdRule

        rule = Rule(
            "T",
            terms(["X", "Y"]),
            (SumProduct((RelAtom("CV", terms(["X", "Y"])),)),),
        )
        program = Program(rules=[rule], edbs={"CV": 2})
        threshold = ThresholdRule(
            head_relation="C",
            head_args=terms(["X", "Y"]),
            body=SumProduct((RelAtom("T", terms(["X", "Y"])),)),
            predicate=lambda v: v > 0.5,
        )
        facts = {}
        for plan in ("indexed", "naive"):
            db = Database(
                pops=REAL_PLUS,
                relations={"CV": {("a", "b"): 0.6, ("b", "c"): 0.4}},
            )
            hybrid = HybridEvaluator(program, [threshold], db, plan=plan)
            hybrid.run()
            facts[plan] = hybrid.bool_facts("C")
        assert facts["indexed"] == facts["naive"] == {("a", "b")}
