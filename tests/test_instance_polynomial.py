"""P-instances (§2.3) and polynomials over POPS (§2.2)."""

from __future__ import annotations

import pytest

from repro.core import Database, Instance, Monomial, Polynomial, PolynomialSystem
from repro.semirings import BOOL, BOTTOM, LIFTED_REAL, NAT, TROP


class TestDatabase:
    def test_bottom_entries_dropped(self):
        db = Database(
            pops=TROP,
            relations={"E": {("a", "b"): 1.0, ("b", "c"): float("inf")}},
        )
        assert ("b", "c") not in db.support("E")
        assert db.value("E", ("b", "c")) == TROP.bottom

    def test_bool_relations(self):
        db = Database(pops=TROP, bool_relations={"E": {("a", "b")}})
        assert db.bool_holds("E", ("a", "b"))
        assert not db.bool_holds("E", ("b", "a"))
        assert not db.bool_holds("F", ("a", "b"))

    def test_active_domain(self):
        db = Database(
            pops=TROP,
            relations={"C": {("a",): 2.0}},
            bool_relations={"E": {("b", "c")}},
        )
        assert db.active_domain() == {"a", "b", "c"}

    def test_keys_frozen_to_tuples(self):
        db = Database(pops=TROP, relations={"C": {("a",): 2.0}})
        assert db.value("C", ("a",)) == 2.0


class TestInstance:
    def test_default_bottom(self):
        inst = Instance(LIFTED_REAL)
        assert inst.get("T", ("a",)) is BOTTOM

    def test_set_bottom_erases(self):
        inst = Instance(TROP)
        inst.set("T", ("a",), 3.0)
        assert inst.size() == 1
        inst.set("T", ("a",), TROP.bottom)
        assert inst.size() == 0

    def test_merge_accumulates(self):
        inst = Instance(TROP)
        inst.merge("T", ("a",), 5.0)
        inst.merge("T", ("a",), 3.0)
        assert inst.get("T", ("a",)) == 3.0  # min

    def test_equality_and_order(self):
        a = Instance(TROP, {"T": {("x",): 3.0}})
        b = Instance(TROP, {"T": {("x",): 3.0}})
        c = Instance(TROP, {"T": {("x",): 2.0}})
        assert a.equals(b)
        assert not a.equals(c)
        assert a.leq(c)  # 3 ⊑ 2 in the tropical order
        assert not c.leq(a)

    def test_copy_isolation(self):
        a = Instance(TROP, {"T": {("x",): 3.0}})
        b = a.copy()
        b.set("T", ("x",), 1.0)
        assert a.get("T", ("x",)) == 3.0

    def test_zero_vs_bottom_distinction_over_lifted(self):
        """0.0 is stored (it is not ⊥) — the R⊥ subtlety."""
        inst = Instance(LIFTED_REAL)
        inst.set("T", ("a",), 0.0)
        assert inst.size() == 1
        assert inst.get("T", ("a",)) == 0.0


class TestPolynomials:
    def test_monomial_make_normalizes(self):
        m = Monomial.make(2, [("x", 1), ("x", 2), ("y", 0)])
        assert m.powers == (("x", 3),)
        assert m.degree() == 3

    def test_monomial_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            Monomial.make(1, [("x", -1)])

    def test_evaluation_over_nat(self):
        # f(x, y) = 2·x·y² + 3
        f = Polynomial((
            Monomial.make(2, {"x": 1, "y": 2}),
            Monomial.make(3, {}),
        ))
        assert f.evaluate(NAT, {"x": 2, "y": 3}, NAT.zero) == 2 * 2 * 9 + 3
        assert f.degree() == 3
        assert not f.is_linear()

    def test_empty_polynomial_is_zero(self):
        assert Polynomial().evaluate(NAT, {}, NAT.zero) == 0
        assert Polynomial().evaluate(TROP, {}, TROP.bottom) == TROP.zero

    def test_pops_subtlety_zero_coefficient_is_not_absent(self):
        """Over R⊥: f(x) = 0·x + b differs from g = b at x = ⊥ (§2.2)."""
        b = 7.0
        f = Polynomial((
            Monomial.make(0.0, {"x": 1}),
            Monomial.make(b, {}),
        ))
        g = Polynomial((Monomial.make(b, {}),))
        at_bottom = {"x": BOTTOM}
        assert f.evaluate(LIFTED_REAL, at_bottom, BOTTOM) is BOTTOM
        assert g.evaluate(LIFTED_REAL, at_bottom, BOTTOM) == b

    def test_drop_absorbed_zeros_requires_semiring(self):
        f = Polynomial((Monomial.make(0.0, {"x": 1}),))
        with pytest.raises(ValueError):
            f.drop_absorbed_zeros(LIFTED_REAL)
        over_nat = Polynomial((
            Monomial.make(0, {"x": 1}),
            Monomial.make(2, {"x": 1}),
        ))
        assert len(over_nat.drop_absorbed_zeros(NAT).monomials) == 1

    def test_combine_like_terms(self):
        f = Polynomial((
            Monomial.make(1, {"x": 1}),
            Monomial.make(2, {"x": 1}),
            Monomial.make(4, {}),
        ))
        combined = f.combine_like_terms(NAT)
        assert len(combined.monomials) == 2
        assert combined.evaluate(NAT, {"x": 5}, 0) == f.evaluate(NAT, {"x": 5}, 0)

    def test_substitution(self):
        # f(x) = x² ; substitute x ↦ (y + 1): expect y² + 2y + 1.
        f = Polynomial((Monomial.make(1, {"x": 2}),))
        repl = Polynomial((
            Monomial.make(1, {"y": 1}),
            Monomial.make(1, {}),
        ))
        g = f.substitute(NAT, "x", repl).combine_like_terms(NAT)
        for y in (0, 1, 2, 5):
            assert g.evaluate(NAT, {"y": y}, 0) == (y + 1) ** 2

    def test_variables_listing(self):
        f = Polynomial((
            Monomial.make(1, {"x": 1, "y": 1}),
            Monomial.make(1, {"y": 2}),
        ))
        assert set(f.variables()) == {"x", "y"}


class TestPolynomialSystem:
    def test_kleene_on_simple_system(self):
        # x :- 1 ⊕ c·x over Trop+ with c = 2: lfp x = 0 (0-stable).
        system = PolynomialSystem(
            pops=TROP,
            polynomials={
                "x": Polynomial((
                    Monomial.make(TROP.one, {}),
                    Monomial.make(2.0, {"x": 1}),
                ))
            },
        )
        result = system.kleene()
        assert result.value["x"] == 0.0
        assert result.steps <= 2

    def test_kleene_divergence_over_nat(self):
        from repro.fixpoint import DivergenceError

        system = PolynomialSystem(
            pops=NAT,
            polynomials={
                "x": Polynomial((
                    Monomial.make(1, {}),
                    Monomial.make(2, {"x": 1}),
                ))
            },
        )
        with pytest.raises(DivergenceError):
            system.kleene(max_steps=25)

    def test_dependency_edges_and_linear(self):
        system = PolynomialSystem(
            pops=BOOL,
            polynomials={
                "x": Polynomial((Monomial.make(True, {"y": 1}),)),
                "y": Polynomial((Monomial.make(True, {}),)),
            },
        )
        assert set(system.dependency_edges()) == {("y", "x")}
        assert system.is_linear()
        assert system.size() == 2
