"""The indexed join subsystem: indexes, planner, and plan equivalence.

Covers the three layers added for indexed join planning:

* :mod:`repro.core.indexes` — mask-keyed hash indexes with incremental
  maintenance and the versioned :class:`IndexManager` cache;
* :mod:`repro.core.planner` — selectivity ordering and probe-join
  execution, including the ``itertools.product`` fallback for
  variables no guard covers;
* plan equivalence — hypothesis-style differential tests asserting the
  ``indexed`` and ``naive`` plans compute identical fixpoints across
  engines and semirings, with the indexed plan never examining more
  keys.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import programs, workloads
from repro.core import Database, Instance, NaiveEvaluator, solve
from repro.core.ast import Compare, Constant, TrueCond, terms, var
from repro.core.indexes import IndexManager, JoinStats, KeyIndex
from repro.core.planner import build_plan, execute_plan
from repro.core.rules import RelAtom, SumProduct
from repro.core.seminaive import SemiNaiveEvaluator
from repro.core.valuations import Guard, enumerate_valuations
from repro.semirings import BOOL, LIFTED_REAL, TROP


class TestKeyIndex:
    def test_probe_returns_matching_bucket(self):
        index = KeyIndex([("a", "b"), ("a", "c"), ("x", "y")])
        assert list(index.probe((0,), ("a",))) == [("a", "b"), ("a", "c")]
        assert list(index.probe((0,), ("missing",))) == []
        assert list(index.probe((0, 1), ("x", "y"))) == [("x", "y")]

    def test_empty_mask_probe_is_scan(self):
        keys = [("a",), ("b",)]
        index = KeyIndex(keys)
        assert list(index.probe((), ())) == keys

    def test_duplicates_dropped(self):
        index = KeyIndex([("a",), ("a",)])
        assert len(index) == 1
        assert index.add(("a",)) is False
        assert index.add(("b",)) is True
        assert len(index) == 2

    def test_add_maintains_built_masks_incrementally(self):
        stats = JoinStats()
        index = KeyIndex([("a", 1)], stats=stats)
        assert list(index.probe((0,), ("a",))) == [("a", 1)]
        builds = stats.index_builds
        index.add(("a", 2))
        # No rebuild: the existing mask map was extended in place.
        assert stats.index_builds == builds
        assert list(index.probe((0,), ("a",))) == [("a", 1), ("a", 2)]

    def test_arity_mismatched_keys_survive_scans_not_probes(self):
        index = KeyIndex([("a",), ("a", "b")])
        assert len(index.keys()) == 2
        # Mask position 1 does not exist on the 1-tuple.
        assert list(index.probe((1,), ("b",))) == [("a", "b")]

    def test_estimate_prefers_bound_masks(self):
        index = KeyIndex([(i % 4, i) for i in range(16)])
        assert index.estimate(()) == 16.0
        # Small indexes get the exact distinct projection count even
        # before the mask map is built: 4 groups of 4.
        assert index.estimate((0,)) == 4.0
        # Once built, the estimate is the true average bucket size.
        index.probe((1,), (0,))
        assert index.estimate((1,)) == 1.0

    def test_estimate_sees_through_constant_columns(self):
        # Every key shares column 0: probing it returns everything,
        # and the exact count says so (the old static guess claimed 4×).
        index = KeyIndex([("a", i) for i in range(16)])
        assert index.estimate((0,)) == 16.0
        assert index.estimate((1,)) == 1.0


class TestIndexManager:
    def test_get_caches_until_version_changes(self):
        manager = IndexManager()
        first = manager.get("r", [("a",)], version=1)
        again = manager.get("r", [("a",), ("b",)], version=1)
        assert again is first  # same version: keys argument ignored
        rebuilt = manager.get("r", [("a",), ("b",)], version=2)
        assert rebuilt is not first
        assert len(rebuilt) == 2

    def test_late_bound_keys_callable(self):
        source = [("a",)]
        manager = IndexManager()
        index = manager.get("r", lambda: source, version=0)
        assert len(index) == 1

    def test_extend_maintains_without_rebuild(self):
        manager = IndexManager()
        index = manager.get("r", [("a",)], version="live")
        assert manager.extend("r", [("b",), ("a",)]) == 1
        assert manager.get("r", [], version="live") is index
        assert len(index) == 2

    def test_extend_unknown_name_raises(self):
        with pytest.raises(KeyError):
            IndexManager().extend("never-built", [("a",)])

    def test_peek_and_invalidate(self):
        manager = IndexManager()
        assert manager.peek("r") is None
        manager.get("r", [("a",)])
        assert manager.peek("r") is not None
        manager.invalidate("r")
        assert manager.peek("r") is None


class TestPlanner:
    def test_small_guard_goes_first(self):
        big = Guard(
            args=terms(["X", "Y"]),
            keys=lambda: [("a", i) for i in range(50)],
        )
        small = Guard(args=terms(["Y", "Z"]), keys=lambda: [(0, "z")])
        plan = build_plan([big, small])
        assert plan.steps[0].guard is small
        # After binding Y, the big guard probes on its bound column.
        assert plan.steps[1].mask == (1,)

    def test_constants_always_in_mask(self):
        guard = Guard(
            args=(Constant("a"), var("Y")), keys=lambda: [("a", "b")]
        )
        plan = build_plan([guard])
        assert plan.steps[0].mask == (0,)

    def test_base_bindings_bound_in_mask(self):
        guard = Guard(args=terms(["X", "Y"]), keys=lambda: [("a", "b")])
        plan = build_plan([guard], bound={"X"})
        assert plan.steps[0].mask == (0,)

    def test_execute_probes_instead_of_scans(self):
        stats = JoinStats()
        edges = [(i, i + 1) for i in range(30)]
        outer = Guard(args=terms(["X"]), keys=lambda: [(0,), (5,)])
        inner = Guard(args=terms(["X", "Y"]), keys=lambda: edges)
        plan = build_plan([outer, inner], stats=stats)
        vals = [
            valuation
            for valuation, _slots in execute_plan(
                plan, ["X", "Y"], [], TrueCond(), lambda r, k: False,
                stats=stats,
            )
        ]
        assert sorted(v["Y"] for v in vals) == [1, 6]
        # One scan of the outer guard; one probe per outer candidate.
        assert stats.scans == 1
        assert stats.probes == 2
        # Far fewer keys examined than the 2 * 30 a scan join touches.
        assert stats.keys_examined == 2 + 2

    def test_repeated_variable_guard(self):
        loop = Guard(
            args=terms(["X", "X"]), keys=lambda: [("a", "a"), ("a", "b")]
        )
        for plan_kind in ("indexed", "naive"):
            vals = list(
                enumerate_valuations(
                    ["X"], [loop], [], TrueCond(), lambda r, k: False,
                    plan=plan_kind,
                )
            )
            assert vals == [{"X": "a"}]


class TestFallbackPath:
    """Variables no guard covers range over the fallback domain."""

    @pytest.mark.parametrize("plan", ["indexed", "naive"])
    def test_unguarded_variables_use_fallback_domain(self, plan):
        stats = JoinStats()
        guard = Guard(args=terms(["X"]), keys=lambda: [("a",), ("b",)])
        vals = list(
            enumerate_valuations(
                ["X", "Y"], [guard], ["u", "v"], TrueCond(),
                lambda r, k: False, plan=plan, stats=stats,
            )
        )
        assert len(vals) == 4
        assert {(v["X"], v["Y"]) for v in vals} == {
            ("a", "u"), ("a", "v"), ("b", "u"), ("b", "v"),
        }
        assert stats.fallback_candidates == 4

    @pytest.mark.parametrize("plan", ["indexed", "naive"])
    def test_fallback_respects_condition(self, plan):
        cond = Compare("!=", var("X"), var("Y"))
        vals = list(
            enumerate_valuations(
                ["X", "Y"], [], ["a", "b"], cond, lambda r, k: False,
                plan=plan,
            )
        )
        assert sorted((v["X"], v["Y"]) for v in vals) == [
            ("a", "b"), ("b", "a"),
        ]

    @pytest.mark.parametrize("plan", ["indexed", "naive"])
    def test_lifted_reals_fall_back_end_to_end(self, plan):
        """LIFTED_REAL is not naturally ordered: no guard is eligible,
        so the whole enumeration runs through the fallback product."""
        from repro.core.rules import Program, Rule

        rule = Rule("T", terms(["X"]), (SumProduct((RelAtom("C", terms(["X"])),)),))
        prog = Program(rules=[rule], edbs={"C": 1})
        db = Database(
            pops=LIFTED_REAL, relations={"C": {("a",): 2.0, ("b",): 3.0}}
        )
        result = solve(prog, db, plan=plan)
        assert result.instance.get("T", ("a",)) == 2.0
        assert result.instance.get("T", ("b",)) == 3.0
        assert result.stats["fallback_candidates"] > 0
        assert result.stats["probes"] == 0
        assert result.stats["scans"] == 0


def _solve_pair(prog, db, method, **kwargs):
    indexed = solve(prog, db, method=method, plan="indexed", **kwargs)
    naive = solve(prog, db, method=method, plan="naive", **kwargs)
    assert indexed.instance.equals(naive.instance)
    assert indexed.steps == naive.steps
    return indexed, naive


class TestPlanEquivalence:
    """Differential: both plans compute identical fixpoints, and the
    indexed plan never examines more keys than the scan join."""

    edge_sets = st.sets(
        st.tuples(st.sampled_from("abcdef"), st.sampled_from("abcdef")).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=10,
    )

    @settings(max_examples=25, deadline=None)
    @given(edge_sets)
    def test_boolean_tc(self, edges):
        db = Database(pops=BOOL, relations={"E": {e: True for e in edges}})
        indexed, naive = _solve_pair(programs.transitive_closure(), db, "naive")
        assert indexed.stats["keys_examined"] <= naive.stats["keys_examined"]

    @settings(max_examples=25, deadline=None)
    @given(edge_sets)
    def test_tropical_apsp_seminaive(self, edges):
        db = Database(pops=TROP, relations={"E": {e: 1.0 for e in edges}})
        indexed, naive = _solve_pair(programs.apsp(), db, "seminaive")
        assert indexed.stats["keys_examined"] <= naive.stats["keys_examined"]

    @settings(max_examples=15, deadline=None)
    @given(edge_sets)
    def test_quadratic_tc_seminaive(self, edges):
        """Two IDB occurrences per body (Example 6.6): exercises the
        delta/new/old store triple with shared incremental indexes."""
        db = Database(pops=BOOL, relations={"E": {e: True for e in edges}})
        _solve_pair(programs.quadratic_transitive_closure(), db, "seminaive")

    @settings(max_examples=10, deadline=None)
    @given(edge_sets)
    def test_grounded_agrees(self, edges):
        db = Database(pops=TROP, relations={"E": {e: 1.0 for e in edges}})
        _solve_pair(programs.apsp(), db, "grounded")

    def test_sssp_line_against_dijkstra(self):
        edges = workloads.line_edges(15)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        expected = workloads.dijkstra(edges, 0)
        for plan in ("indexed", "naive"):
            for method in ("naive", "seminaive"):
                result = solve(programs.sssp(0), db, method=method, plan=plan)
                got = {
                    k[0]: v
                    for k, v in result.instance.support("L").items()
                }
                assert got == expected, (plan, method)

    def test_unknown_plan_rejected(self):
        db = Database(pops=TROP, relations={"E": {("a", "b"): 1.0}})
        evaluator = NaiveEvaluator(programs.apsp(), db, plan="bogus")
        with pytest.raises(ValueError, match="unknown join plan"):
            evaluator.run()


class TestSemiNaiveIndexMaintenance:
    def test_new_store_index_grows_incrementally(self):
        edges = workloads.line_edges(8)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        evaluator = SemiNaiveEvaluator(programs.sssp(0), db)
        result = evaluator.run()
        index = evaluator.indexes.peek(("sn-new", "L"))
        assert index is not None
        # The maintained index covers exactly the fixpoint support.
        assert sorted(index.keys()) == sorted(
            result.instance.support("L").keys()
        )

    def test_stats_shared_between_engines(self):
        edges = workloads.line_edges(8)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        result = solve(programs.sssp(0), db, method="seminaive")
        # Bootstrap (naïve) counters are folded into the final snapshot.
        assert result.stats["keys_examined"] > 0
        assert result.stats["probes"] > 0


class TestInstanceSupportKeys:
    def test_support_keys_feed_indexes(self):
        instance = Instance(TROP)
        instance.set("T", ("a",), 1.0)
        instance.set("T", ("b",), 2.0)
        assert sorted(instance.support_keys("T")) == [("a",), ("b",)]
        assert list(instance.support_keys("missing")) == []

    def test_copy_preserves_support_keys(self):
        instance = Instance(TROP)
        instance.set("T", ("a",), 1.0)
        snap = instance.copy()
        instance.set("T", ("b",), 2.0)
        assert list(snap.support_keys("T")) == [("a",)]
