"""Incremental maintenance (`core/incremental.py`): the DRed engine.

The load-bearing invariant, hypothesis-tested across TROP/BOOL/THREE:
for any mutation sequence, the maintained fixpoint is byte-identical
(via :func:`fingerprint`) to ``solve()``-from-scratch on the final EDB.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import core, programs, workloads
from repro.core import solve
from repro.core.incremental import (
    IncrementalInstance,
    Mutation,
    fingerprint,
)
from repro.semirings import BOOL, THREE, TROP


def trop_db():
    return core.Database(
        pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
    )


def bool_db():
    edges = {("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")}
    return core.Database(
        pops=BOOL, relations={"E": {e: True for e in edges}}
    )


def three_db():
    edges = {("a", "b"): True, ("b", "c"): True, ("c", "a"): False}
    return core.Database(pops=THREE, relations={"E": dict(edges)})


NODES = ["a", "b", "c", "d", "x"]


def mutation_strategy(value_strategy):
    key = st.tuples(st.sampled_from(NODES), st.sampled_from(NODES))
    insert = st.builds(
        lambda k, v: Mutation("insert", "E", k, v), key, value_strategy
    )
    delete = st.builds(lambda k: Mutation("delete", "E", k, None), key)
    return st.one_of(insert, delete)


class TestDifferentialInvariant:
    """Maintained fixpoint ≡ solve()-from-scratch, byte for byte."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            mutation_strategy(st.floats(0.5, 9.5, width=16)),
            min_size=1,
            max_size=6,
        )
    )
    def test_trop(self, muts):
        inc = IncrementalInstance(programs.sssp("a"), trop_db())
        for m in muts:
            inc.apply([m])
        ref = solve(inc.program, inc.database, method="seminaive")
        assert fingerprint(inc.instance) == fingerprint(ref.instance)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            mutation_strategy(st.just(True)), min_size=1, max_size=6
        )
    )
    def test_bool(self, muts):
        inc = IncrementalInstance(programs.transitive_closure(), bool_db())
        for m in muts:
            inc.apply([m])
        ref = solve(inc.program, inc.database, method="seminaive")
        assert fingerprint(inc.instance) == fingerprint(ref.instance)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            mutation_strategy(st.sampled_from([True, False])),
            min_size=1,
            max_size=5,
        )
    )
    def test_three(self, muts):
        # THREE is not naturally ordered: every shrink degrades to a
        # full re-solve, but the invariant must still hold exactly.
        inc = IncrementalInstance(programs.transitive_closure(), three_db())
        for m in muts:
            inc.apply([m])
        ref = solve(inc.program, inc.database, method="naive")
        assert fingerprint(inc.instance) == fingerprint(ref.instance)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.lists(
                mutation_strategy(st.floats(0.5, 9.5, width=16)),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_trop_batched(self, batches):
        inc = IncrementalInstance(programs.sssp("a"), trop_db())
        for batch in batches:
            inc.apply(batch)
        ref = solve(inc.program, inc.database, method="seminaive")
        assert fingerprint(inc.instance) == fingerprint(ref.instance)


class TestMaintenancePaths:
    def test_insert_rides_seminaive_delta(self):
        inc = IncrementalInstance(programs.sssp("a"), trop_db())
        summary = inc.apply(
            [Mutation("insert", "E", ("a", "d"), 0.5)]
        )
        assert summary.path == "seminaive"
        assert inc.stats["incremental_fallbacks"] == 0
        assert inc.query("L", ("d",)) == 0.5

    def test_pure_dred_deletion_no_full_resolve(self):
        """The acceptance-criteria path: a deletion maintained entirely
        by over-delete/re-derive, with zero full re-solves after warmup."""
        inc = IncrementalInstance(programs.sssp("a"), trop_db())
        solves_before = inc.stats["full_solves"]
        summary = inc.apply([Mutation("delete", "E", ("a", "b"), None)])
        assert summary.path in ("seminaive", "warm-naive")
        assert summary.dred_marked > 0
        assert inc.stats["full_solves"] == solves_before
        assert inc.stats["incremental_fallbacks"] == 0
        assert inc.stats["dred_deletions"] > 0
        ref = solve(inc.program, inc.database, method="seminaive")
        assert fingerprint(inc.instance) == fingerprint(ref.instance)

    def test_bool_support_counts_prune_overdeletion(self):
        # ("a","c") is doubly derived (direct edge + via "b"): support
        # counting keeps it out of the over-delete set entirely.
        inc = IncrementalInstance(programs.transitive_closure(), bool_db())
        inc.apply([Mutation("delete", "E", ("a", "b"), None)])
        assert inc.stats["dred_support_skips"] >= 1
        assert inc.query("T", ("a", "c")) is True

    def test_cyclic_self_support_does_not_survive_deletion(self):
        """Regression: with a self-loop E(a,a), T(b,a) supports itself
        via T(b,a) ⊗ E(a,a).  Naive immediate-support counting sees that
        cyclic derivation as a survivor and skips the over-delete,
        leaving T(b,a)/T(b,b) stale; well-founded counting must not."""
        inc = IncrementalInstance(programs.transitive_closure(), bool_db())
        inc.apply([Mutation("insert", "E", ("a", "a"), True)])
        inc.apply([Mutation("insert", "E", ("b", "a"), True)])
        inc.apply([Mutation("delete", "E", ("b", "a"), None)])
        assert not inc.query("T", ("b", "a"))
        assert not inc.query("T", ("b", "b"))
        ref = solve(inc.program, inc.database, method="seminaive")
        assert fingerprint(inc.instance) == fingerprint(ref.instance)

    def test_three_falls_back_to_resolve(self):
        inc = IncrementalInstance(programs.transitive_closure(), three_db())
        summary = inc.apply([Mutation("delete", "E", ("a", "b"), None)])
        assert summary.path == "resolve"
        assert inc.stats["incremental_fallbacks"] == 1

    def test_dred_cap_degrades_to_resolve(self):
        inc = IncrementalInstance(
            programs.sssp("a"), trop_db(), dred_cap=0
        )
        summary = inc.apply([Mutation("delete", "E", ("a", "b"), None)])
        assert summary.path == "resolve"
        assert inc.stats["incremental_fallbacks"] == 1
        ref = solve(inc.program, inc.database, method="seminaive")
        assert fingerprint(inc.instance) == fingerprint(ref.instance)

    def test_noop_batch(self):
        inc = IncrementalInstance(programs.sssp("a"), trop_db())
        before = fingerprint(inc.instance)
        summary = inc.apply([Mutation("delete", "E", ("x", "x"), None)])
        assert summary.path == "noop"
        assert fingerprint(inc.instance) == before


class TestApiSurface:
    def test_versions_bump_per_relation(self):
        inc = IncrementalInstance(programs.sssp("a"), trop_db())
        v_e = inc.versions.get("E", 0)
        v_l = inc.versions.get("L", 0)
        inc.apply([Mutation("insert", "E", ("a", "d"), 0.5)])
        assert inc.versions["E"] > v_e
        assert inc.versions["L"] > v_l

    def test_validate_rejects_idb_and_unknown(self):
        inc = IncrementalInstance(programs.sssp("a"), trop_db())
        with pytest.raises(ValueError, match="IDB"):
            inc.validate([Mutation("insert", "L", ("a",), 1.0)])
        with pytest.raises(ValueError):
            inc.validate([Mutation("insert", "Nope", ("a",), 1.0)])
        # validation never mutates state
        assert inc.stats["incremental_applies"] == 0

    def test_mutation_round_trips_through_dicts(self):
        m = Mutation("insert", "E", ("a", "b"), 2.5)
        assert Mutation.from_dict(m.as_dict()) == m
        d = Mutation("delete", "E", ("a", "b"), None)
        assert Mutation.from_dict(d.as_dict()) == d

    def test_stats_snapshot_keys(self):
        inc = IncrementalInstance(programs.sssp("a"), trop_db())
        for key in (
            "incremental_fallbacks",
            "dred_deletions",
            "dred_support_skips",
            "full_solves",
        ):
            assert key in inc.stats
