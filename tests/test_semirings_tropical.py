"""Tropical structures: ``Trop+``, ``Trop+_p``, ``Trop+_≤η``.

Checks the worked arithmetic of Examples 2.9 / 2.10, the ``⊖`` of
Eq. (6), and the stability facts of Propositions 5.3 / 5.4.
"""

from __future__ import annotations

import math

import pytest

from repro.semirings import (
    INF,
    TROP,
    TropicalEtaSemiring,
    TropicalPSemiring,
)
from repro.semirings.properties import check_minus_laws
from repro.semirings.stability import (
    element_stability_index,
    is_p_stable_element,
    is_zero_stable,
)


class TestTropPlus:
    def test_min_plus(self):
        assert TROP.add(3.0, 5.0) == 3.0
        assert TROP.mul(3.0, 5.0) == 8.0
        assert TROP.add(INF, 2.0) == 2.0
        assert TROP.mul(INF, 2.0) == INF

    def test_units(self):
        assert TROP.zero == INF
        assert TROP.one == 0.0
        assert TROP.bottom == INF

    def test_order_is_reversed(self):
        assert TROP.leq(5.0, 3.0)
        assert not TROP.leq(3.0, 5.0)
        assert TROP.leq(INF, 0.0)

    def test_minus_eq6(self):
        assert TROP.minus(3.0, 5.0) == 3.0       # strictly better: keep
        assert TROP.minus(5.0, 3.0) == INF       # no improvement: drop
        assert TROP.minus(5.0, 5.0) == INF
        assert TROP.minus(3.0, INF) == 3.0

    def test_minus_laws(self):
        assert check_minus_laws(TROP, TROP.sample_values()) is None

    def test_zero_stable(self):
        assert is_zero_stable(TROP)
        report = element_stability_index(TROP, 7.5)
        assert report.stable and report.index == 0

    def test_violates_acc_but_stable(self):
        """1 > 1/2 > 1/3 > … ascends forever in ⊑, yet Trop+ is 0-stable."""
        chain = [1.0 / k for k in range(1, 50)]
        for lo, hi in zip(chain, chain[1:]):
            assert TROP.lt(lo, hi)


class TestTropP:
    def test_example_2_9_arithmetic(self):
        """{{3,7,9}} ⊕₂ {{3,7,7}} = {{3,3,7}} and ⊗₂ = {{6,10,10}}."""
        t2 = TropicalPSemiring(2)
        x = (3.0, 7.0, 9.0)
        y = (3.0, 7.0, 7.0)
        assert t2.add(x, y) == (3.0, 3.0, 7.0)
        assert t2.mul(x, y) == (6.0, 10.0, 10.0)

    def test_units(self):
        t1 = TropicalPSemiring(1)
        assert t1.zero == (INF, INF)
        assert t1.one == (0.0, INF)

    def test_identity_15_bag_then_minp(self):
        """min_p(min_p(x) ⊎ min_p(y)) = min_p(x ⊎ y) (Eq. 15)."""
        t1 = TropicalPSemiring(1)
        x = [5.0, 1.0, 3.0]
        y = [2.0, 2.0, 9.0]
        direct = t1.from_values(sorted(x + y))
        staged = t1.add(t1.from_values(x), t1.from_values(y))
        assert direct == staged

    def test_p0_is_trop(self):
        t0 = TropicalPSemiring(0)
        assert t0.add((3.0,), (5.0,)) == (3.0,)
        assert t0.mul((3.0,), (5.0,)) == (8.0,)

    def test_natural_order_closed_form(self):
        t1 = TropicalPSemiring(1)
        assert t1.leq((3.0, 7.0), (3.0, 5.0))
        assert not t1.leq((3.0, 7.0), (2.0, 6.0))
        assert t1.leq((3.0, 7.0), (0.0, 1.0))
        assert not t1.leq((0.0, 1.0), (3.0, 7.0))
        assert t1.leq(t1.zero, (0.0, 0.0))

    def test_order_matches_reachability_witness_search(self):
        """x ⪯ y iff some z gives x ⊕ z = y — cross-check on a grid."""
        t1 = TropicalPSemiring(1)
        universe = [
            (a, b)
            for a in (0.0, 1.0, 2.0, INF)
            for b in (0.0, 1.0, 2.0, INF)
            if a <= b
        ]
        for x in universe:
            for y in universe:
                witnessed = any(t1.add(x, z) == y for z in universe)
                assert witnessed == t1.leq(x, y), (x, y)

    @pytest.mark.parametrize("p", [0, 1, 2, 3])
    def test_proposition_5_3_p_stable(self, p):
        tp = TropicalPSemiring(p)
        for c in tp.sample_values():
            assert is_p_stable_element(tp, c, p)

    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_proposition_5_3_tightness(self, p):
        """The 1-element of Trop+_p is not (p−1)-stable."""
        tp = TropicalPSemiring(p)
        report = element_stability_index(tp, tp.one)
        assert report.index == p

    def test_from_values_pads_with_inf(self):
        t2 = TropicalPSemiring(2)
        assert t2.from_values([4.0]) == (4.0, INF, INF)
        assert t2.singleton(4.0) == (4.0, INF, INF)


class TestTropEta:
    def test_example_2_10_arithmetic(self):
        """η = 6.5: {3,7} ⊕ {5,9,10} = {3,5,7,9}; {1,6} ⊗ {1,2,3} = …"""
        te = TropicalEtaSemiring(6.5)
        assert te.add((3.0, 7.0), (5.0, 9.0, 10.0)) == (3.0, 5.0, 7.0, 9.0)
        assert te.mul((1.0, 6.0), (1.0, 2.0, 3.0)) == (
            2.0,
            3.0,
            4.0,
            7.0,
            8.0,
        )

    def test_units(self):
        te = TropicalEtaSemiring(2.0)
        assert te.zero == (INF,)
        assert te.one == (0.0,)

    def test_identity_16(self):
        """min_≤η(min_≤η(x) ∪ min_≤η(y)) = min_≤η(x ∪ y) (Eq. 16)."""
        te = TropicalEtaSemiring(2.0)
        x = [1.0, 2.5, 9.0]
        y = [0.5, 2.0, 2.6]
        direct = te.from_values(x + y)
        staged = te.add(te.from_values(x), te.from_values(y))
        assert direct == staged

    def test_eta_zero_is_trop(self):
        te = TropicalEtaSemiring(0.0)
        assert te.add((3.0,), (5.0,)) == (3.0,)
        assert te.mul((3.0,), (5.0,)) == (8.0,)

    def test_proposition_5_4_stability_index(self):
        """The exact index of {a} is ⌊η/a⌋ (the largest p with pa ≤ η);
        the paper's ⌈η/a⌉ is its stated upper bound."""
        eta = 6.5
        te = TropicalEtaSemiring(eta)
        for a in (1.0, 2.0, 3.0, 6.5):
            report = element_stability_index(te, te.singleton(a))
            assert report.stable
            assert report.index == math.floor(eta / a)
            assert report.index <= math.ceil(eta / a)

    def test_proposition_5_4_not_uniformly_stable(self):
        """Stability indices grow without bound as a → 0."""
        te = TropicalEtaSemiring(1.0)
        indices = [
            element_stability_index(te, te.singleton(1.0 / k), budget=200).index
            for k in (1, 2, 5, 10)
        ]
        assert indices == [1, 2, 5, 10]

    def test_stable_geometric_matches_definition(self):
        te = TropicalEtaSemiring(1.0)
        c = te.singleton(0.4)
        # c^(3): 0, .4, .8, 1.2 — keep ≤ min+η = 1.0 → {0, .4, .8}
        assert te.geometric(c, 3) == (0.0, 0.4, 0.8)

    def test_no_lattice_counterexample(self):
        """{3} and {3.5} (η = 1) have incomparable maximal lower bounds,
        so Trop+_≤η is not a complete distributive dioid (§6.1)."""
        te = TropicalEtaSemiring(1.0)
        x, y = (3.0,), (3.5,)
        lb1, lb2 = (4.6,), (5.0,)
        for lb in (lb1, lb2):
            assert te.leq(lb, x) and te.leq(lb, y)
        assert not te.leq(lb1, lb2) and not te.leq(lb2, lb1)
        assert not hasattr(te, "minus")
