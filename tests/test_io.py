"""JSON serialization of values, instances and databases."""

from __future__ import annotations

import io
import json

import pytest

from repro.core import (
    Database,
    Instance,
    database_from_dict,
    database_to_dict,
    decode_value,
    dump_instance,
    encode_value,
    instance_from_dict,
    instance_to_dict,
    load_instance,
)
from repro.semirings import (
    BOOL,
    BOTTOM,
    INF,
    LIFTED_REAL,
    NAT,
    REAL,
    THREE,
    TOP,
    TROP,
    CompletedPOPS,
    PowersetPOPS,
    TropicalEtaSemiring,
    TropicalPSemiring,
)


ROUND_TRIP_SPACES = [
    BOOL,
    NAT,
    TROP,
    TropicalPSemiring(1),
    TropicalPSemiring(2),
    TropicalEtaSemiring(2.0),
    LIFTED_REAL,
    CompletedPOPS(REAL),
    THREE,
    PowersetPOPS(BOOL),
]


@pytest.mark.parametrize("pops", ROUND_TRIP_SPACES, ids=lambda s: s.name)
def test_sample_values_round_trip(pops):
    for value in pops.sample_values():
        data = encode_value(value)
        json.dumps(data)  # must be JSON-compatible
        back = decode_value(data)
        assert pops.eq(back, value), value


def test_sentinels_and_infinity():
    assert encode_value(BOTTOM) is None
    assert decode_value(None) is BOTTOM
    assert decode_value(encode_value(TOP)) is TOP
    assert decode_value(encode_value(INF)) == INF
    assert decode_value({"inf": False}) == -INF


def test_bool_vs_int_fidelity():
    assert decode_value(encode_value(True)) is True
    assert decode_value(encode_value(1)) == 1


def test_unknown_tag_rejected():
    with pytest.raises(ValueError):
        decode_value({"mystery": 1})
    with pytest.raises(TypeError):
        encode_value(object())


def test_instance_round_trip():
    inst = Instance(TROP, {"T": {("a", "b"): 1.5, ("b", "c"): INF - 1}})
    inst.set("L", ("a",), 0.0)
    data = instance_to_dict(inst)
    back = instance_from_dict(TROP, data)
    assert back.equals(inst)


def test_instance_round_trip_with_bottom_values_dropped():
    inst = Instance(LIFTED_REAL)
    inst.set("T", ("a",), 2.0)
    data = instance_to_dict(inst)
    back = instance_from_dict(LIFTED_REAL, data)
    assert back.equals(inst)
    assert back.get("T", ("z",)) is BOTTOM


def test_database_round_trip():
    db = Database(
        pops=TROP,
        relations={"E": {("a", "b"): 1.0}},
        bool_relations={"Src": {("a",)}},
    )
    data = database_to_dict(db)
    json.dumps(data)
    back = database_from_dict(TROP, data)
    assert back.relations == db.relations
    assert back.bool_relations == db.bool_relations


def test_file_level_helpers():
    inst = Instance(TROP, {"T": {("a",): 3.0}})
    buffer = io.StringIO()
    dump_instance(inst, buffer)
    buffer.seek(0)
    back = load_instance(TROP, buffer)
    assert back.equals(inst)


def test_cli_json_output(tmp_path, capsys):
    from repro.cli import main

    program = tmp_path / "p.dl"
    program.write_text("T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y).\n")
    edb = tmp_path / "e.json"
    edb.write_text(json.dumps({
        "relations": {"E": [[["a", "b"], 1.0], [["b", "c"], 2.0]]},
    }))
    code = main([
        "run", str(program), "--pops", "trop", "--edb", str(edb),
        "--output", "json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    entries = dict(
        (tuple(key), value) for key, value in payload["instance"]["T"]
    )
    assert entries[("a", "c")] == 3.0
    assert payload["pops"] == "Trop+"


from hypothesis import given, settings, strategies as st

from repro.semirings import TropicalPSemiring as _TP

_tp2 = _TP(2)
_costs = st.one_of(
    st.just(INF), st.integers(min_value=0, max_value=50).map(float)
)


@settings(max_examples=60)
@given(st.lists(_costs, max_size=5))
def test_hypothesis_tropp_bag_round_trip(values):
    bag = _tp2.from_values(values)
    assert decode_value(encode_value(bag)) == bag


@settings(max_examples=60)
@given(st.sets(st.booleans()))
def test_hypothesis_frozenset_round_trip(values):
    fs = frozenset(values)
    assert decode_value(encode_value(fs)) == fs
