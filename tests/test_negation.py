"""Negation (Section 7): well-founded and Fitting/THREE semantics."""

from __future__ import annotations

import pytest

from repro import workloads
from repro.negation import (
    GroundNormalProgram,
    NormalRule,
    agrees_with_well_founded,
    alternating_fixpoint,
    fitting_fixpoint,
    win_move_datalogo,
    win_move_program,
)
from repro.semirings import BOTTOM, TOP


def atoms(nodes):
    return [("Win", n) for n in nodes]


class TestSection71Table:
    """The alternating-fixpoint trace of the win-move game (Fig. 4)."""

    @pytest.fixture()
    def model(self):
        return alternating_fixpoint(win_move_program(workloads.fig_4_edges()))

    def test_trace_rows_match_paper(self, model):
        def row(t):
            return [
                1 if ("Win", n) in model.trace[t] else 0 for n in "abcdef"
            ]

        assert row(0) == [0, 0, 0, 0, 0, 0]
        assert row(1) == [1, 1, 1, 1, 1, 0]
        assert row(2) == [0, 0, 0, 0, 1, 0]
        assert row(3) == [1, 1, 1, 0, 1, 0]
        assert row(4) == [0, 0, 1, 0, 1, 0]
        assert row(5) == row(3)
        assert row(6) == row(4)

    def test_well_founded_model(self, model):
        assert model.true_atoms == {("Win", "c"), ("Win", "e")}
        assert model.false_atoms == {("Win", "d"), ("Win", "f")}
        assert model.undefined_atoms == {("Win", "a"), ("Win", "b")}

    def test_value_accessor(self, model):
        assert model.value(("Win", "c")) == "true"
        assert model.value(("Win", "f")) == "false"
        assert model.value(("Win", "a")) == "undef"

    def test_even_odd_chains(self, model):
        evens = model.trace[0::2]
        odds = model.trace[1::2]
        for lo, hi in zip(evens, evens[1:]):
            assert lo <= hi
        for hi, lo in zip(odds, odds[1:]):
            assert lo <= hi


class TestSection72Table:
    """datalog° over THREE reproduces the same game (Fig. 4, §7.2)."""

    def test_exact_trace(self):
        result = win_move_datalogo(
            workloads.fig_4_edges(), capture_trace=True
        )
        def row(t):
            return [result.trace[t].get("Win", (n,)) for n in "abcdef"]

        B = BOTTOM
        assert row(0) == [B, B, B, B, B, B]
        assert row(1) == [B, B, B, B, B, False]
        assert row(2) == [B, B, B, B, True, False]
        assert row(3) == [B, B, B, False, True, False]
        assert row(4) == [B, B, True, False, True, False]
        assert result.steps == 4  # W⁽⁵⁾ = W⁽⁴⁾

    def test_matches_well_founded(self):
        result = win_move_datalogo(workloads.fig_4_edges())
        wf = alternating_fixpoint(win_move_program(workloads.fig_4_edges()))
        state = {
            ("Win", n): result.instance.get("Win", (n,)) for n in "abcdef"
        }
        assert agrees_with_well_founded(state, wf)
        # On win-move the two are *equal*: nothing WF-defined stays ⊥.
        for n in "abcdef":
            v = state[("Win", n)]
            expected = wf.value(("Win", n))
            assert (v is BOTTOM) == (expected == "undef")

    def test_four_never_produces_top(self):
        """Fitting's Proposition 7.1 (§7.3): ⊤ is unreachable."""
        result = win_move_datalogo(
            workloads.fig_4_edges(), use_four=True, capture_trace=True
        )
        for snapshot in result.trace:
            for rel in list(snapshot.relations()):
                for value in snapshot.support(rel).values():
                    assert value is not TOP

    def test_three_and_four_agree(self):
        r3 = win_move_datalogo(workloads.fig_4_edges())
        r4 = win_move_datalogo(workloads.fig_4_edges(), use_four=True)
        for n in "abcdef":
            a = r3.instance.get("Win", (n,))
            b = r4.instance.get("Win", (n,))
            assert (a is BOTTOM and b is BOTTOM) or a == b


class TestFittingGroundOperator:
    def test_matches_datalogo_engine(self):
        """The direct Fitting iteration equals the datalog° run."""
        program = win_move_program(workloads.fig_4_edges())
        result = fitting_fixpoint(program)
        engine = win_move_datalogo(workloads.fig_4_edges())
        for n in "abcdef":
            direct = result.value[("Win", n)]
            via_engine = engine.instance.get("Win", (n,))
            assert (direct is BOTTOM and via_engine is BOTTOM) or (
                direct == via_engine
            )

    def test_positive_program_self_loop_discrepancy(self):
        """§7.3: P(a) :- P(a) is false under WF / minimal model but ⊥
        under Fitting — the 'which is right?' example."""
        program = GroundNormalProgram(
            rules=[NormalRule(head="Pa", positive=("Pa",))]
        )
        wf = alternating_fixpoint(program)
        assert wf.value("Pa") == "false"
        fit = fitting_fixpoint(program)
        assert fit.value["Pa"] is BOTTOM

    def test_stratified_negation_agrees_everywhere(self):
        """On a negation-free chain program all semantics coincide."""
        program = GroundNormalProgram(
            rules=[
                NormalRule(head="A"),
                NormalRule(head="B", positive=("A",)),
                NormalRule(head="C", negative=("D",)),
            ]
        )
        wf = alternating_fixpoint(program)
        fit = fitting_fixpoint(program)
        assert wf.value("A") == "true" and fit.value["A"] is True
        assert wf.value("B") == "true" and fit.value["B"] is True
        assert wf.value("C") == "true" and fit.value["C"] is True
        assert wf.value("D") == "false" and fit.value["D"] is False

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fitting_below_wf_on_random_games(self, seed):
        """Fitting ≤_k well-founded on random win-move graphs."""
        import random

        rng = random.Random(seed)
        nodes = list(range(8))
        edges = {
            (a, b)
            for a in nodes
            for b in nodes
            if a != b and rng.random() < 0.25
        }
        program = win_move_program(edges)
        wf = alternating_fixpoint(program)
        fit = fitting_fixpoint(program)
        assert agrees_with_well_founded(fit.value, wf)

    def test_convergence_within_n_steps(self):
        """THREE's core is 0-stable: ≤ N steps (Corollary 5.19)."""
        program = win_move_program(workloads.fig_4_edges())
        result = fitting_fixpoint(program)
        assert result.steps <= len(program.atoms)
