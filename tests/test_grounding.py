"""Grounding to provenance polynomials (Section 4.3)."""

from __future__ import annotations

import pytest

from repro import programs, workloads
from repro.core import (
    Database,
    FuncFactor,
    GroundingError,
    Program,
    RelAtom,
    Rule,
    SumProduct,
    assignment_to_instance,
    ground_program,
    terms,
)
from repro.semirings import BOOL, BOTTOM, THREE, TROP
from repro.semirings.base import FunctionRegistry
from repro.semirings.three import three_not


class TestBomGrounding:
    """Example 4.2's grounded program has exactly the paper's shape."""

    @pytest.fixture()
    def system(self, bom_db):
        return ground_program(programs.bill_of_material(), bom_db)

    def test_one_polynomial_per_ground_atom(self, system):
        assert set(system.polynomials) == {("T", (n,)) for n in "abcd"}

    def test_paper_rule_shapes(self, system):
        # T(a) :- C(a) + T(b) + T(c)
        poly_a = system.polynomials[("T", ("a",))]
        assert len(poly_a.monomials) == 3
        var_sets = sorted(
            tuple(m.variables()) for m in poly_a.monomials
        )
        assert var_sets == [(), (("T", ("b",)),), (("T", ("c",)),)]
        # T(d) :- C(d): a single constant monomial with value 10.
        poly_d = system.polynomials[("T", ("d",))]
        assert len(poly_d.monomials) == 1
        assert poly_d.monomials[0].coeff == 10.0
        assert poly_d.monomials[0].degree() == 0

    def test_fixpoint_matches_paper(self, system):
        result = system.kleene()
        inst = assignment_to_instance(system, result.value)
        assert inst.get("T", ("a",)) is BOTTOM
        assert inst.get("T", ("b",)) is BOTTOM
        assert inst.get("T", ("c",)) == 11.0
        assert inst.get("T", ("d",)) == 10.0
        assert result.steps <= 3


class TestSparseVsTotal:
    def test_naturally_ordered_semiring_defaults_sparse(self, fig2a_trop_db):
        system = ground_program(programs.sssp("a"), fig2a_trop_db)
        # Sparse: only heads with at least one monomial.
        assert all(p.monomials for p in system.polynomials.values())

    def test_total_mode_materializes_all_atoms(self, fig2a_trop_db):
        system = ground_program(
            programs.sssp("a"), fig2a_trop_db, total=True
        )
        assert len(system.polynomials) == 4  # |D₀| = 4, unary IDB

    def test_total_and_sparse_agree_semantically(self, fig2a_trop_db):
        prog = programs.sssp("a")
        sparse = ground_program(prog, fig2a_trop_db).kleene().value
        total = ground_program(prog, fig2a_trop_db, total=True).kleene().value
        for var, value in sparse.items():
            assert TROP.eq(total[var], value)


class TestGroundingRejections:
    def test_interpreted_function_over_idb_rejected(self):
        rule = Rule(
            "Win",
            terms(["X"]),
            (
                SumProduct(
                    (
                        RelAtom("E", terms(["X", "Y"])),
                        FuncFactor("not", (RelAtom("Win", terms(["Y"])),)),
                    )
                ),
            ),
        )
        program = Program(rules=[rule], bool_edbs={"E": 2})
        db = Database(pops=THREE, bool_relations={"E": {("a", "b")}})
        registry = FunctionRegistry()
        registry.register("not", three_not)
        with pytest.raises(GroundingError):
            ground_program(program, db, functions=registry)

    def test_function_over_edb_only_is_fine(self):
        rule = Rule(
            "T",
            terms(["X"]),
            (
                SumProduct(
                    (FuncFactor("not", (RelAtom("E", terms(["X", "X"])),)),)
                ),
            ),
        )
        program = Program(rules=[rule], bool_edbs={"E": 2})
        db = Database(pops=THREE, bool_relations={"E": {("a", "a")}})
        registry = FunctionRegistry()
        registry.register("not", three_not)
        system = ground_program(program, db, functions=registry)
        result = system.kleene()
        assert result.value[("T", ("a",))] is False  # not(1) = 0


class TestTcGrounding:
    def test_linear_tc_system_is_linear(self):
        db = Database(pops=BOOL, bool_relations={}, relations={
            "E": {("a", "b"): True, ("b", "c"): True},
        })
        system = ground_program(programs.transitive_closure(), db)
        assert system.is_linear()

    def test_quadratic_tc_system_is_not_linear(self):
        db = Database(pops=BOOL, relations={"E": {("a", "b"): True}})
        system = ground_program(programs.quadratic_transitive_closure(), db)
        assert not system.is_linear()

    def test_combine_like_terms_compacts(self):
        db = Database(
            pops=TROP,
            relations={"E": workloads.fig_2a_graph()},
        )
        compact = ground_program(programs.apsp(), db)
        loose = ground_program(programs.apsp(), db, combine_like_terms=False)
        assert compact.size() <= loose.size()
        assert compact.kleene().value == loose.kleene().value
