"""Exhaustive axiom batteries over every structure's sample values.

Every POPS in the library must satisfy the pre-semiring laws, its
declared flags (absorption when ``is_semiring``, strictness), the
partial-order axioms, and operator monotonicity (Definitions 2.1/2.3).

Two documented exceptions:

* ``LEX_NN`` — the paper's own divergence witness (Section 4.2 case (i))
  has a ``⊗`` that is monotone only against multipliers with non-zero
  first component; we assert exactly that weaker property.
* ``P(S)`` over non-idempotent bases is only sub-distributive (module
  docstring of :mod:`repro.semirings.powerset`); the battery covers the
  idempotent instances.
"""

from __future__ import annotations

import pytest

from repro.semirings import (
    BOOL,
    FOUR,
    FREE,
    LEX_NN,
    LIFTED_NAT,
    LIFTED_REAL,
    NAT,
    NAT_INF,
    REAL_PLUS,
    THREE,
    TROP,
    CompletedPOPS,
    PowersetPOPS,
    ProductPOPS,
    REAL,
    TropicalEtaSemiring,
    TropicalPSemiring,
)
from repro.semirings.properties import (
    check_partial_order,
    check_pops,
    check_pre_semiring,
    check_strictness,
)

FULL_BATTERY = [
    BOOL,
    NAT,
    NAT_INF,
    REAL_PLUS,
    TROP,
    TropicalPSemiring(0),
    TropicalPSemiring(1),
    TropicalPSemiring(2),
    TropicalEtaSemiring(0.0),
    TropicalEtaSemiring(2.0),
    LIFTED_REAL,
    LIFTED_NAT,
    CompletedPOPS(REAL),
    THREE,
    FOUR,
    PowersetPOPS(BOOL),
    ProductPOPS(BOOL, TROP),
    ProductPOPS(LIFTED_REAL, TROP),
    FREE,
]


@pytest.mark.parametrize("pops", FULL_BATTERY, ids=lambda s: s.name)
def test_full_pops_battery(pops):
    witness = check_pops(pops)
    assert witness is None, f"{pops.name} violates {witness}"


def test_lexicographic_pairs_presemiring_and_order():
    vals = LEX_NN.sample_values()
    assert check_pre_semiring(LEX_NN, vals) is None
    assert check_partial_order(LEX_NN, vals) is None
    assert check_strictness(LEX_NN, vals) is None


def test_lexicographic_pairs_add_monotone():
    vals = LEX_NN.sample_values()
    for a in vals:
        for a2 in vals:
            if not LEX_NN.leq(a, a2):
                continue
            for b in vals:
                assert LEX_NN.leq(LEX_NN.add(a, b), LEX_NN.add(a2, b))


def test_lexicographic_pairs_mul_monotone_against_positive_first():
    vals = LEX_NN.sample_values()
    positive = [v for v in vals if v[0] > 0]
    for a in vals:
        for a2 in vals:
            if not LEX_NN.leq(a, a2):
                continue
            for b in positive:
                assert LEX_NN.leq(LEX_NN.mul(a, b), LEX_NN.mul(a2, b))


def test_lexicographic_pairs_mul_not_monotone_in_general():
    # The known gap: multiplying by (0, b) collapses the first
    # coordinate, breaking lexicographic monotonicity.
    a, a2, b = (0, 5), (1, 0), (0, 5)
    assert LEX_NN.leq(a, a2)
    assert not LEX_NN.leq(LEX_NN.mul(a, b), LEX_NN.mul(a2, b))


@pytest.mark.parametrize(
    "pops",
    [BOOL, NAT, NAT_INF, REAL_PLUS, TROP, FREE],
    ids=lambda s: s.name,
)
def test_naturally_ordered_semirings_have_bottom_zero(pops):
    assert pops.is_naturally_ordered
    assert pops.eq(pops.bottom, pops.zero)


@pytest.mark.parametrize(
    "pops",
    [LIFTED_REAL, LIFTED_NAT, THREE, FOUR],
    ids=lambda s: s.name,
)
def test_non_naturally_ordered_pops_distinguish_bottom_and_zero(pops):
    assert not pops.is_naturally_ordered
    assert not pops.eq(pops.bottom, pops.zero)


def test_powerset_subdistributivity_failure_over_naturals():
    """Over N, pointwise lifting is strictly sub-distributive."""
    ps = PowersetPOPS(NAT)
    a = frozenset({0, 1})
    b = frozenset({1})
    c = frozenset({1})
    lhs = ps.mul(a, ps.add(b, c))
    rhs = ps.add(ps.mul(a, b), ps.mul(a, c))
    assert lhs != rhs
    assert lhs < rhs  # strict subset: sub-distributive


def test_powerset_subdistributive_inclusion_holds_generally():
    """``A ⊗ (B ⊕ C) ⊆ (A ⊗ B) ⊕ (A ⊗ C)`` for P(Trop+) samples."""
    ps = PowersetPOPS(TROP)
    vals = ps.sample_values()
    for a in vals:
        for b in vals:
            for c in vals:
                lhs = ps.mul(a, ps.add(b, c))
                rhs = ps.add(ps.mul(a, b), ps.mul(a, c))
                assert lhs <= rhs


def test_powerset_bool_laws_exhaustive():
    """P(B) satisfies every POPS law over its full 4-element carrier."""
    ps = PowersetPOPS(BOOL)
    carrier = [
        frozenset(),
        frozenset({False}),
        frozenset({True}),
        frozenset({False, True}),
    ]
    assert check_pops(ps, carrier) is None
