"""Dependency graphs and recursive-variable analysis (Section 5.4)."""

from __future__ import annotations


from repro import programs
from repro.analysis import (
    DiGraph,
    is_recursive,
    predicate_graph,
    recursive_predicates,
    recursive_variables,
    split_recursive,
    strata,
    system_graph,
)
from repro.core import Database, ground_program
from repro.semirings import LIFTED_REAL, TROP


class TestDiGraph:
    def test_scc_on_cycle_plus_tail(self):
        g = DiGraph.from_edges([(1, 2), (2, 1), (2, 3), (3, 4)])
        comps = {frozenset(c) for c in g.strongly_connected_components()}
        assert frozenset({1, 2}) in comps
        assert frozenset({3}) in comps
        assert frozenset({4}) in comps

    def test_cyclic_nodes_include_self_loops(self):
        g = DiGraph.from_edges([(1, 1), (2, 3)])
        assert g.cyclic_nodes() == {1}

    def test_reachability(self):
        g = DiGraph.from_edges([(1, 2), (2, 3), (4, 5)])
        assert g.reachable_from([1]) == {1, 2, 3}


class TestSystemAnalysis:
    def test_bom_recursive_split_matches_proposition_5_16(self, bom_db):
        """Fig. 2(b): T(a), T(b) sit on the cycle (and stay ⊥); T(c),
        T(d) are non-recursive and escape ⊥ (the §5.4 discussion)."""
        system = ground_program(programs.bill_of_material(), bom_db)
        rec, non = split_recursive(system)
        assert rec == {("T", ("a",)), ("T", ("b",))}
        assert non == {("T", ("c",)), ("T", ("d",))}

    def test_recursive_values_stay_in_core(self, bom_db):
        """Proposition 5.16: recursive variables never escape P⊕⊥."""
        system = ground_program(programs.bill_of_material(), bom_db)
        rec = recursive_variables(system)
        result = system.kleene()
        for var in rec:
            assert LIFTED_REAL.eq(
                result.value[var], LIFTED_REAL.bottom
            )

    def test_acyclic_system_has_no_recursive_vars(self):
        db = Database(
            pops=TROP,
            relations={"E": {("a", "b"): 1.0, ("b", "c"): 1.0}},
        )
        system = ground_program(programs.sssp("a"), db)
        assert recursive_variables(system) == frozenset()

    def test_cycle_makes_everything_downstream_recursive(self):
        db = Database(
            pops=TROP,
            relations={
                "E": {("a", "b"): 1.0, ("b", "a"): 1.0, ("b", "c"): 1.0}
            },
        )
        system = ground_program(programs.sssp("a"), db)
        rec = recursive_variables(system)
        assert ("L", ("c",)) in rec  # downstream of the a↔b cycle

    def test_system_graph_edges(self, bom_db):
        system = ground_program(programs.bill_of_material(), bom_db)
        g = system_graph(system)
        assert (("T", ("d",)), ("T", ("c",))) in g.edges
        assert (("T", ("b",)), ("T", ("a",))) in g.edges


class TestPredicateAnalysis:
    def test_tc_is_recursive(self, tc_program):
        assert is_recursive(tc_program)
        assert recursive_predicates(tc_program) == {"T"}

    def test_nonrecursive_program(self):
        prog = programs.shipping_dates()
        assert not is_recursive(prog)
        assert recursive_predicates(prog) == frozenset()

    def test_predicate_graph_shape(self, tc_program):
        g = predicate_graph(tc_program)
        assert ("T", "T") in g.edges

    def test_strata_ordering(self):
        from repro.core import Program, RelAtom, Rule, SumProduct, terms

        base = Rule("A", terms(["X"]),
                    (SumProduct((RelAtom("E", terms(["X"])),)),))
        derived = Rule(
            "B", terms(["X"]),
            (SumProduct((RelAtom("A", terms(["X"])),
                         RelAtom("B", terms(["X"])),)),),
        )
        prog = Program(rules=[base, derived])
        layers = strata(prog)
        flat = [sorted(layer) for layer in layers]
        assert flat.index(["A"]) < flat.index(["B"])
