"""Workload generators and canonical program builders."""

from __future__ import annotations


from repro import programs, workloads
from repro.core import Database, naive_fixpoint
from repro.semirings import BOOL, TROP


class TestGenerators:
    def test_fig_2a_calibration(self):
        edges = workloads.fig_2a_graph()
        assert sorted(edges.values()) == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert edges[("a", "b")] == 1.0

    def test_fig_2b_matches_paper_grounding(self):
        edges, costs = workloads.fig_2b_bom()
        assert ("a", "b") in edges and ("b", "a") in edges
        assert ("c", "d") in edges
        assert costs["d"] == 10.0

    def test_fig_4_win_move_graph(self):
        edges = workloads.fig_4_edges()
        assert len(edges) == 7
        assert ("e", "f") in edges

    def test_random_digraph_determinism(self):
        a = workloads.random_weighted_digraph(6, 0.5, seed=42)
        b = workloads.random_weighted_digraph(6, 0.5, seed=42)
        assert a == b
        c = workloads.random_weighted_digraph(6, 0.5, seed=43)
        assert a != c

    def test_random_digraph_no_self_loops(self):
        edges = workloads.random_weighted_digraph(5, 1.0, seed=0)
        assert all(a != b for a, b in edges)
        assert len(edges) == 5 * 4

    def test_cycle_and_line(self):
        assert len(workloads.cycle_edges(5)) == 5
        assert len(workloads.line_edges(5)) == 4
        assert (4, 0) in workloads.cycle_edges(5)

    def test_grid(self):
        edges = workloads.grid_edges(2, 3)
        assert (((0, 0), (0, 1))) in edges
        assert (((0, 0), (1, 0))) in edges
        assert len(edges) == 2 * 2 + 3 * 1  # rights + downs

    def test_dag_is_acyclic(self):
        import networkx as nx

        dag = workloads.random_dag(10, 0.5, seed=3)
        assert nx.is_directed_acyclic_graph(nx.DiGraph(list(dag)))

    def test_part_hierarchy_tree_size(self):
        edges, costs = workloads.part_hierarchy(depth=2, fanout=3, seed=0)
        assert len(costs) == 1 + 3 + 9
        assert len(edges) == len(costs) - 1

    def test_part_hierarchy_back_edges_create_cycles(self):
        import networkx as nx

        edges, _ = workloads.part_hierarchy(
            depth=3, fanout=2, seed=5, cyclic_back_edges=2
        )
        graph = nx.DiGraph(list(edges))
        assert not nx.is_directed_acyclic_graph(graph)

    def test_bfs_oracle(self):
        edges = {(1, 2), (2, 3), (4, 5)}
        assert workloads.reachable_nodes(edges, 1) == {1, 2, 3}

    def test_dijkstra_oracle(self):
        dist = workloads.dijkstra(workloads.fig_2a_graph(), "a")
        assert dist == {"a": 0.0, "b": 1.0, "c": 4.0, "d": 8.0}


class TestProgramBuilders:
    def test_tc_program_shape(self):
        prog = programs.transitive_closure()
        assert prog.is_linear()
        assert prog.idbs == {"T": 2}

    def test_quadratic_tc_not_linear(self):
        assert not programs.quadratic_transitive_closure().is_linear()

    def test_apsp_equals_tc_shape(self):
        assert str(programs.apsp()) == str(programs.transitive_closure())

    def test_sssp_custom_indicator_values(self):
        from repro.semirings import TropicalPSemiring

        t1 = TropicalPSemiring(1)
        prog = programs.sssp(
            "a", source_value=t1.one, missing_value=t1.zero
        )
        indicator = prog.rules[0].bodies[0].factors[0]
        assert indicator.true_value == t1.one
        assert indicator.false_value == t1.zero

    def test_bom_range_restricted(self):
        prog = programs.bill_of_material()
        body = prog.rules[0].bodies[1]
        assert "E" in str(body.condition)

    def test_one_rule_program_geometric_iterates(self):
        prog = programs.one_rule_program(TROP.one)
        db = Database(pops=TROP, relations={"Cval": {("u",): 3.0}})
        result = naive_fixpoint(prog, db, capture_trace=True)
        values = [snap.get("X", ("u",)) for snap in result.trace]
        # ⊥=∞, then c^(0)=0, stable immediately (Trop+ is 0-stable).
        assert values[0] == TROP.zero
        assert values[1] == 0.0

    def test_builders_compose_with_custom_names(self):
        prog = programs.transitive_closure(edge="Road", closure="Reach")
        db = Database(pops=BOOL, relations={"Road": {("x", "y"): True}})
        result = naive_fixpoint(prog, db)
        assert result.instance.get("Reach", ("x", "y")) is True
