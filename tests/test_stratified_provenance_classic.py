"""Extension tests: stratified negation, provenance, classic semirings."""

from __future__ import annotations

import pytest

from repro import analysis, programs, workloads
from repro.analysis import (
    derivation_count,
    monomial_support,
    provenance,
    symbol_for,
)
from repro.core import (
    BoolAtom,
    Database,
    Indicator,
    Not,
    Program,
    RelAtom,
    Rule,
    SumProduct,
    naive_fixpoint,
    seminaive_fixpoint,
    terms,
)
from repro.negation import (
    GroundNormalProgram,
    NormalRule,
    StratificationError,
    alternating_fixpoint,
    solve_stratified,
    validate_strata,
)
from repro.semirings import BOOL, BOTTLENECK, TROP, VITERBI
from repro.semirings.properties import check_minus_laws, check_pops
from repro.semirings.stability import is_zero_stable


class TestClassicSemirings:
    @pytest.mark.parametrize("pops", [BOTTLENECK, VITERBI], ids=lambda s: s.name)
    def test_axioms(self, pops):
        assert check_pops(pops) is None
        assert check_minus_laws(pops, pops.sample_values()) is None
        assert is_zero_stable(pops)

    def test_widest_path(self):
        edges = {
            ("s", "a"): 4.0,
            ("a", "t"): 3.0,
            ("s", "t"): 2.0,
        }
        db = Database(pops=BOTTLENECK, relations={"E": edges})
        result = naive_fixpoint(programs.apsp(), db)
        assert result.instance.get("T", ("s", "t")) == 3.0

    def test_widest_path_seminaive_agrees(self):
        edges = workloads.random_weighted_digraph(7, 0.35, seed=12)
        db = Database(pops=BOTTLENECK, relations={"E": dict(edges)})
        naive = naive_fixpoint(programs.apsp(), db)
        semi = seminaive_fixpoint(programs.apsp(), db)
        assert semi.instance.equals(naive.instance)

    def test_most_reliable_path(self):
        edges = {("s", "a"): 0.9, ("a", "t"): 0.9, ("s", "t"): 0.7}
        db = Database(pops=VITERBI, relations={"E": edges})
        result = naive_fixpoint(programs.apsp(), db)
        assert result.instance.get("T", ("s", "t")) == pytest.approx(0.81)

    def test_viterbi_cycles_converge(self):
        """Probabilities < 1 on a cycle decay; max-times is 0-stable so
        the fixpoint ignores loops entirely."""
        edges = {("a", "b"): 0.5, ("b", "a"): 0.5}
        db = Database(pops=VITERBI, relations={"E": edges})
        result = naive_fixpoint(programs.apsp(), db)
        assert result.instance.get("T", ("a", "b")) == 0.5
        assert result.instance.get("T", ("a", "a")) == 0.25


def reach_then_unreached():
    """Stratum 1: Reach(x); stratum 2: Unreached(x) for other nodes."""
    reach = Rule(
        "Reach",
        terms(["X"]),
        (
            SumProduct(
                (Indicator(BoolAtom("Src", terms(["X"]))),),
                condition=BoolAtom("Node", terms(["X"])),
            ),
            SumProduct(
                (RelAtom("Reach", terms(["Z"])),),
                condition=BoolAtom("E", terms(["Z", "X"])),
            ),
        ),
    )
    unreached = Rule(
        "Unreached",
        terms(["X"]),
        (
            SumProduct(
                (Indicator(BoolAtom("Node", terms(["X"]))),),
                condition=BoolAtom("Node", terms(["X"]))
                & Not(BoolAtom("Reach", terms(["X"]))),
            ),
        ),
    )
    s1 = Program(rules=[reach], bool_edbs={"Src": 1, "Node": 1, "E": 2})
    s2 = Program(rules=[unreached], bool_edbs={"Node": 1, "Reach": 1})
    return s1, s2


class TestStratified:
    def _db(self, edges, nodes, src):
        return Database(
            pops=BOOL,
            bool_relations={
                "E": set(edges),
                "Node": {(n,) for n in nodes},
                "Src": {(src,)},
            },
        )

    def test_reach_unreached(self):
        edges = {("a", "b"), ("b", "c"), ("d", "e")}
        nodes = "abcde"
        s1, s2 = reach_then_unreached()
        result = solve_stratified([s1, s2], self._db(edges, nodes, "a"))
        reached = {k[0] for k in result.instance.support("Reach")}
        unreached = {k[0] for k in result.instance.support("Unreached")}
        assert reached == {"a", "b", "c"}
        assert unreached == {"d", "e"}

    def test_matches_well_founded(self):
        """On a stratifiable program the WF model is total and equal."""
        edges = {("a", "b"), ("b", "c"), ("d", "e")}
        nodes = "abcde"
        s1, s2 = reach_then_unreached()
        result = solve_stratified([s1, s2], self._db(edges, nodes, "a"))

        rules = [NormalRule(head=("Reach", "a"))]
        for x, y in edges:
            rules.append(
                NormalRule(head=("Reach", y), positive=(("Reach", x),))
            )
        for n in nodes:
            rules.append(
                NormalRule(head=("Unreached", n), negative=(("Reach", n),))
            )
        wf = alternating_fixpoint(GroundNormalProgram(rules=rules))
        assert not wf.undefined_atoms
        for n in nodes:
            assert (
                result.instance.get("Reach", (n,)) is True
            ) == (wf.value(("Reach", n)) == "true")
            assert (
                result.instance.get("Unreached", (n,)) is True
            ) == (wf.value(("Unreached", n)) == "true")

    def test_rejects_negation_of_own_stratum(self):
        s1, s2 = reach_then_unreached()
        db = self._db({("a", "b")}, "ab", "a")
        with pytest.raises(StratificationError) as err:
            validate_strata([Program(rules=s1.rules + s2.rules,
                                     bool_edbs=dict(s1.bool_edbs))], db)
        assert "own IDB" in str(err.value)

    def test_rejects_unknown_negated_relation(self):
        _, s2 = reach_then_unreached()
        db = Database(pops=BOOL, bool_relations={"Node": {("a",)}})
        with pytest.raises(StratificationError):
            validate_strata([s2], db)

    def test_input_database_not_mutated(self):
        edges = {("a", "b")}
        s1, s2 = reach_then_unreached()
        db = self._db(edges, "ab", "a")
        before = set(db.bool_relations)
        solve_stratified([s1, s2], db)
        assert set(db.bool_relations) == before

    def test_pops_values_published_across_strata(self):
        """Stratum 2 reads stratum 1's tropical distances as an EDB."""
        dist = programs.sssp("a", label="D")
        far = Rule(
            "Far",
            terms(["X"]),
            (
                SumProduct(
                    (RelAtom("D", terms(["X"])),),
                    condition=BoolAtom("D", terms(["X"])),
                ),
            ),
        )
        s2 = Program(rules=[far], bool_edbs={"D": 1})
        db = Database(
            pops=TROP, relations={"E": workloads.fig_2a_graph()}
        )
        result = solve_stratified([dist, s2], db)
        assert result.instance.get("Far", ("d",)) == 8.0


class TestProvenance:
    def _tc_db(self):
        return Database(
            pops=BOOL,
            relations={"E": {("a", "b"): True, ("b", "c"): True}},
        )

    def test_single_edge_provenance(self):
        prov = provenance(programs.transitive_closure(), self._tc_db(), 1)
        element = prov[("T", ("a", "b"))]
        assert monomial_support(element) == ((symbol_for("E", ("a", "b")),),)
        assert derivation_count(element) == 1

    def test_two_hop_uses_both_edges(self):
        prov = provenance(programs.transitive_closure(), self._tc_db(), 3)
        element = prov[("T", ("a", "c"))]
        (bag,) = monomial_support(element)
        assert bag == (
            symbol_for("E", ("a", "b")),
            symbol_for("E", ("b", "c")),
        )

    def test_derivation_counting_on_diamond(self):
        """Two distinct derivations for the diamond's far corner."""
        db = Database(
            pops=BOOL,
            relations={
                "E": {
                    ("s", "l"): True,
                    ("s", "r"): True,
                    ("l", "t"): True,
                    ("r", "t"): True,
                }
            },
        )
        prov = provenance(programs.transitive_closure(), db, 4)
        element = prov[("T", ("s", "t"))]
        assert derivation_count(element) == 2
        assert len(monomial_support(element)) == 2

    def test_depth_truncation_is_lemma_5_6(self):
        """Provenance at depth q over a 3-chain: T(a,d) appears only
        once derivations of depth 3 are admitted."""
        db = Database(
            pops=BOOL,
            relations={
                "E": {("a", "b"): True, ("b", "c"): True, ("c", "d"): True}
            },
        )
        prog = programs.transitive_closure()
        assert ("T", ("a", "d")) not in provenance(prog, db, 2)
        assert ("T", ("a", "d")) in provenance(prog, db, 3)

    def test_recursive_cycle_provenance_grows(self):
        """Over a cycle the (unstable) free semiring accumulates one
        new walk per extra depth — no finite provenance exists."""
        db = Database(
            pops=BOOL,
            relations={"E": {("a", "b"): True, ("b", "a"): True}},
        )
        prog = programs.transitive_closure()
        counts = [
            derivation_count(
                provenance(prog, db, q).get(("T", ("a", "b")), ())
            )
            for q in (1, 3, 5)
        ]
        assert counts[0] < counts[1] < counts[2]


class TestConvergenceOfClassics:
    def test_classify_bottleneck_case_v(self):
        db = Database(
            pops=BOTTLENECK, relations={"E": {("a", "b"): 1.0}}
        )
        report = analysis.classify(programs.apsp(), db)
        assert report.taxonomy_case == "(v)"
