"""Magic-set rewriting: query-directed evaluation (§1's optimization)."""

from __future__ import annotations

import pytest

from repro import programs, workloads
from repro.core import Database, NaiveEvaluator, solve
from repro.core.magic import (
    MagicError,
    MagicQuery,
    demanded_keys,
    magic_registry,
    magic_rewrite,
    support_function,
)
from repro.semirings import BOOL, BOTTLENECK, LIFTED_REAL, TROP, VITERBI


def run_magic(program, query, db, **solve_kw):
    # Through the modern solve() entry point — SCC scheduling, indexed
    # plans, compiled kernels and the guardrail pre-flight all apply to
    # the rewritten program (magic programs are naive-only: the supp
    # guard over an IDB magic atom has no differential affinity).
    rewritten = magic_rewrite(program, query, db.pops)
    registry = magic_registry(db.pops)
    return rewritten, solve(
        rewritten, db, method="naive", functions=registry, **solve_kw
    )


class TestSupportFunction:
    @pytest.mark.parametrize("pops", [BOOL, TROP, BOTTLENECK, VITERBI],
                             ids=lambda s: s.name)
    def test_supp_values(self, pops):
        supp = support_function(pops)
        assert pops.eq(supp(pops.zero), pops.zero)
        assert pops.eq(supp(pops.one), pops.one)
        for v in pops.sample_values():
            if not pops.eq(v, pops.zero):
                assert pops.eq(supp(v), pops.one)

    @pytest.mark.parametrize("pops", [BOOL, TROP, BOTTLENECK],
                             ids=lambda s: s.name)
    def test_supp_monotone(self, pops):
        supp = support_function(pops)
        for a in pops.sample_values():
            for b in pops.sample_values():
                if pops.leq(a, b):
                    assert pops.leq(supp(a), supp(b))


class TestQueryValidation:
    def test_binding_count(self):
        with pytest.raises(MagicError):
            MagicQuery("T", "bf", ())
        with pytest.raises(MagicError):
            MagicQuery("T", "bx", ("a",))

    def test_requires_idb(self):
        with pytest.raises(MagicError):
            magic_rewrite(
                programs.transitive_closure(),
                MagicQuery("E", "bf", ("a",)),
                TROP,
            )

    def test_requires_matching_arity(self):
        with pytest.raises(MagicError):
            magic_rewrite(
                programs.transitive_closure(),
                MagicQuery("T", "b", ("a",)),
                TROP,
            )

    def test_rejects_non_semiring_pops(self):
        with pytest.raises(MagicError):
            magic_rewrite(
                programs.bill_of_material(),
                MagicQuery("T", "f", ()),
                LIFTED_REAL,
            )


class TestCorrectness:
    """Demanded atoms keep their full-evaluation values exactly."""

    def _compare(self, program, query, db, answer_rel):
        full = solve(program, db, method="naive")
        _rw, magic = run_magic(program, query, db)
        full_support = full.instance.support(answer_rel)
        wanted = demanded_keys(query, list(full_support))
        for key in wanted:
            assert db.pops.eq(
                magic.instance.get(answer_rel, key),
                full.instance.get(answer_rel, key),
            ), key
        # Soundness: the magic run derives no wrong values anywhere.
        for key, value in magic.instance.support(answer_rel).items():
            assert db.pops.eq(value, full.instance.get(answer_rel, key))
        return full, magic

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_tc_from_source_over_bool(self, seed):
        edges = workloads.random_dag(9, 0.25, seed=seed)
        db = Database(pops=BOOL, relations={"E": {e: True for e in edges}})
        self._compare(
            programs.transitive_closure(),
            MagicQuery("T", "bf", (0,)),
            db,
            "T",
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_apsp_single_source_over_trop(self, seed):
        edges = workloads.random_weighted_digraph(8, 0.3, seed=seed)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        self._compare(
            programs.apsp(), MagicQuery("T", "bf", (0,)), db, "T"
        )

    def test_point_query_both_bound(self):
        edges = workloads.fig_2a_graph()
        db = Database(pops=TROP, relations={"E": dict(edges)})
        full, magic = self._compare(
            programs.apsp(), MagicQuery("T", "bb", ("a", "d")), db, "T"
        )
        assert magic.instance.get("T", ("a", "d")) == 8.0

    def test_free_query_degenerates_to_full(self):
        edges = workloads.fig_2a_graph()
        db = Database(pops=TROP, relations={"E": dict(edges)})
        full, magic = self._compare(
            programs.apsp(), MagicQuery("T", "ff", ()), db, "T"
        )
        assert len(magic.instance.support("T")) == len(
            full.instance.support("T")
        )

    def test_widest_path_query(self):
        edges = {("s", "a"): 4.0, ("a", "t"): 3.0, ("s", "t"): 2.0,
                 ("x", "y"): 9.0}
        db = Database(pops=BOTTLENECK, relations={"E": dict(edges)})
        _full, magic = self._compare(
            programs.apsp(), MagicQuery("T", "bf", ("s",)), db, "T"
        )
        assert magic.instance.get("T", ("s", "t")) == 3.0


class TestRelevanceRestriction:
    def test_magic_derives_fewer_atoms(self):
        """Two disconnected components: the undemanded one is skipped."""
        edges = dict(workloads.line_edges(10))
        # Second component shifted by 100.
        edges.update({(a + 100, b + 100): w
                      for (a, b), w in workloads.line_edges(10).items()})
        db = Database(pops=TROP, relations={"E": edges})
        full = solve(programs.apsp(), db, method="naive")
        _rw, magic = run_magic(
            programs.apsp(), MagicQuery("T", "bf", (0,)), db
        )
        full_t = len(full.instance.support("T"))
        magic_t = len(magic.instance.support("T"))
        assert magic_t < full_t / 2
        # And every demanded answer is still there.
        assert magic.instance.get("T", (0, 9)) == 9.0

    def test_magic_predicate_support_is_reachable_set(self):
        edges = {("a", "b"): 1.0, ("b", "c"): 1.0, ("x", "y"): 1.0}
        db = Database(pops=TROP, relations={"E": edges})
        _rw, magic = run_magic(
            programs.sssp("a", label="L"),
            MagicQuery("L", "f", ()),
            db,
        )
        assert set(magic.instance.support("L")) == {("a",), ("b",), ("c",)}

    def test_work_reduction_counters(self):
        """The rewritten program touches fewer tuples (E21 shape)."""
        edges = dict(workloads.line_edges(12))
        edges.update({(a + 100, b + 100): w
                      for (a, b), w in workloads.line_edges(12).items()})
        db = Database(pops=TROP, relations={"E": edges})
        full_eval = NaiveEvaluator(programs.apsp(), db)
        full_eval.run()
        rewritten = magic_rewrite(
            programs.apsp(), MagicQuery("T", "bf", (0,)), TROP
        )
        magic_eval = NaiveEvaluator(
            rewritten, db, functions=magic_registry(TROP)
        )
        magic_eval.run()
        assert magic_eval.stats.products < full_eval.stats.products


class TestIdempotencyRequirement:
    def test_rejects_non_idempotent_semiring(self):
        from repro.semirings import NAT

        with pytest.raises(MagicError) as err:
            magic_rewrite(
                programs.transitive_closure(),
                MagicQuery("T", "bf", ("a",)),
                NAT,
            )
        assert "idempotent" in str(err.value)

    def test_quadratic_tc_demands_second_adornment(self):
        """Example 6.6's TC²: T(X,Z)·T(Z,Y) demands T under bf twice
        (the second occurrence is bf after Z is bound) — correctness
        across occurrences.  Queries node 1, the DAG's productive
        source (node 0 has no out-edges in this draw — querying it
        would make every assertion below vacuous)."""
        edges = workloads.random_dag(7, 0.35, seed=11)
        db = Database(pops=BOOL, relations={"E": {e: True for e in edges}})
        prog = programs.quadratic_transitive_closure()
        full = solve(prog, db, method="naive")
        rewritten = magic_rewrite(prog, MagicQuery("T", "bf", (1,)), BOOL)
        magic = solve(
            rewritten, db, method="naive", functions=magic_registry(BOOL)
        )
        demanded = [
            key for key in full.instance.support("T") if key[0] == 1
        ]
        assert demanded, "query source must demand something"
        for key in demanded:
            assert magic.instance.get("T", key) == full.instance.get(
                "T", key
            ), key
        for key, value in magic.instance.support("T").items():
            assert full.instance.get("T", key) == value


class TestModernEngineSurface:
    """The rewritten programs run through the full modern engine.

    Magic programs are naive-only — the ``supp`` guard wraps an IDB
    magic atom, which has no differential affinity — but within
    ``method="naive"`` every schedule and kernel engine must agree
    byte-for-byte, and the guardrail pre-flight must classify the
    rewritten program like any other.
    """

    def _db(self):
        edges = workloads.random_weighted_digraph(8, 0.3, seed=3)
        return Database(pops=TROP, relations={"E": dict(edges)})

    @pytest.mark.parametrize("schedule", ["scc", "parallel", "monolithic"])
    @pytest.mark.parametrize(
        "engine", ["interpreted", "compiled", "codegen", "batched"]
    )
    def test_all_schedules_and_engines_agree(self, schedule, engine):
        db = self._db()
        rewritten = magic_rewrite(
            programs.apsp(), MagicQuery("T", "bf", (0,)), TROP
        )
        registry = magic_registry(TROP)
        base = solve(
            rewritten, db, method="naive", functions=registry,
            schedule="monolithic", engine="interpreted",
        )
        other = solve(
            rewritten, db, method="naive", functions=registry,
            schedule=schedule, engine=engine,
        )
        assert dict(other.instance.support("T")) == dict(
            base.instance.support("T")
        )

    def test_preflight_verdict_rides_magic_solves(self):
        db = self._db()
        _rw, result = run_magic(
            programs.apsp(), MagicQuery("T", "bf", (0,)), db
        )
        assert result.verdict is not None
        assert result.verdict.status in ("bounded", "converges")

    def test_seminaive_rejects_magic_programs_cleanly(self):
        from repro.core import SemiNaiveError

        db = self._db()
        rewritten = magic_rewrite(
            programs.apsp(), MagicQuery("T", "bf", (0,)), TROP
        )
        with pytest.raises(SemiNaiveError, match="affinity"):
            solve(
                rewritten, db, method="seminaive",
                functions=magic_registry(TROP), schedule="monolithic",
            )


class TestDemandPathSurface:
    """The planner-stage rewrite (``solve(..., query=…)``) across the
    whole engine surface.

    Unlike the legacy ``supp``-guard programs above, the demand path's
    output is ordinary datalog°: every schedule, kernel engine and
    worker count must produce byte-identical demanded atoms — including
    semi-naïve sharding (``engine_workers=2``), which the legacy
    rewrite cannot enter at all.
    """

    SEMIRING_EDGES = {
        "TROP": lambda i: float(1 + i % 7),
        "BOOL": lambda i: True,
        "BOTTLENECK": lambda i: float(1 + i % 5),
        "VITERBI": lambda i: (1.0, 0.5, 0.25, 0.125)[i % 4],
    }
    SEMIRINGS = {
        "TROP": TROP,
        "BOOL": BOOL,
        "BOTTLENECK": BOTTLENECK,
        "VITERBI": VITERBI,
    }

    def _db(self, name):
        edges = workloads.random_weighted_digraph(8, 0.3, seed=3)
        weight = self.SEMIRING_EDGES[name]
        return Database(
            pops=self.SEMIRINGS[name],
            relations={
                "E": {e: weight(i) for i, e in enumerate(sorted(edges))}
            },
        )

    @pytest.mark.parametrize("schedule", ["scc", "parallel"])
    @pytest.mark.parametrize(
        "engine", ["interpreted", "compiled", "codegen", "batched"]
    )
    @pytest.mark.parametrize("name", sorted(SEMIRINGS), ids=str)
    def test_all_schedules_and_engines_agree(self, name, engine, schedule):
        db = self._db(name)
        query = ("T", (0, None))
        base = solve(
            programs.apsp(), db, method="seminaive",
            schedule="scc", engine="interpreted", query=query,
        )
        other = solve(
            programs.apsp(), db, method="seminaive",
            schedule=schedule, engine=engine, query=query,
        )
        assert base.stats["demand_fallbacks"] == 0
        assert other.stats["demand_fallbacks"] == 0
        assert dict(other.instance.support("T")) == dict(
            base.instance.support("T")
        )

    @pytest.mark.parametrize("name", sorted(SEMIRINGS), ids=str)
    def test_sharded_workers_agree(self, name):
        """The rewritten program shards cleanly: no delta-affinity
        fallback, byte-identical demanded atoms."""
        db = self._db(name)
        query = ("T", (0, None))
        base = solve(programs.apsp(), db, method="seminaive", query=query)
        sharded = solve(
            programs.apsp(), db, method="seminaive",
            engine_workers=2, query=query,
        )
        assert sharded.stats["demand_fallbacks"] == 0
        assert sharded.stats.get("shard_fallbacks", 0) == 0
        assert dict(sharded.instance.support("T")) == dict(
            base.instance.support("T")
        )
