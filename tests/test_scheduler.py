"""SCC-stratified scheduling and cost-based join ordering (PR 3).

Covers the stratum scheduler end to end:

* :func:`repro.analysis.graphs.condensation` — topological SCC order,
  recursive flags, self-loops, disconnected and rule-less predicates;
* the scheduled engines (``schedule="scc"``) against the monolithic
  baseline (``schedule="monolithic"``): identical fixpoints on the
  paper's workloads and on hypothesis-generated programs with cyclic,
  mutually recursive and disconnected predicates, across
  classic-Boolean / tropical / THREE / lifted-reals value spaces;
* the E12 acceptance counters: on line-graph layered SSSP the
  scheduled engine performs strictly fewer rule applications than the
  monolithic fixpoint, with non-recursive strata applying exactly
  once;
* cost-based join ordering (exact DP ≤ 6 guards, 2-step lookahead
  beyond): never more ``keys_examined`` than the greedy baseline on
  the checked-in benchmark workloads, and strictly fewer on the
  4-guard star join;
* per-relation index invalidation: untouched relations skip their
  per-iteration rebuild (``rebuild_skips``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import programs, workloads
from repro.analysis.graphs import condensation
from repro.core import Database, solve
from repro.core.ast import Compare, Constant, terms, var
from repro.core.planner import order_guards
from repro.core.rules import Indicator, Program, RelAtom, Rule, SumProduct
from repro.core.scheduler import scheduled_fixpoint
from repro.core.valuations import Guard
from repro.semirings import BOOL, LIFTED_REAL, THREE, TROP


# ---------------------------------------------------------------------------
# Condensation of the predicate dependency graph.
# ---------------------------------------------------------------------------


class TestCondensation:
    def test_layered_sssp_strata(self):
        cond = condensation(programs.layered_sssp(0))
        assert cond.components == [("S",), ("L",), ("Best",)]
        assert cond.recursive == [False, True, False]

    def test_self_loop_is_recursive(self):
        cond = condensation(programs.sssp(0))
        assert cond.components == [("L",)]
        assert cond.recursive == [True]

    def test_mutual_recursion_one_component(self):
        rules = [
            Rule("P", terms(["X"]), (SumProduct((RelAtom("Q", terms(["X"])),)),)),
            Rule(
                "Q",
                terms(["X"]),
                (
                    SumProduct((RelAtom("P", terms(["X"])),)),
                    SumProduct((RelAtom("A", terms(["X"])),)),
                ),
            ),
        ]
        cond = condensation(Program(rules=rules, edbs={"A": 1}))
        assert cond.components == [("P", "Q")]
        assert cond.recursive == [True]

    def test_disconnected_and_ruleless_predicates(self):
        rules = [
            Rule("P", terms(["X"]), (SumProduct((RelAtom("A", terms(["X"])),)),)),
            Rule("Z", terms(["X"]), (SumProduct((RelAtom("A", terms(["X"])),)),)),
        ]
        program = Program(rules=rules, edbs={"A": 1}, idbs={"R": 1})
        cond = condensation(program)
        assert sorted(cond.components) == [("P",), ("R",), ("Z",)]
        assert cond.recursive == [False, False, False]

    def test_order_respects_dependencies(self):
        prog = programs.layered_sssp(0)
        cond = condensation(prog)
        seen = set()
        deps = {"S": set(), "L": {"S", "L"}, "Best": {"L"}}
        for comp, _rec in cond:
            for rel in comp:
                assert deps[rel] <= seen | set(comp)
            seen |= set(comp)


# ---------------------------------------------------------------------------
# E12 acceptance: strictly fewer rule applications under scheduling.
# ---------------------------------------------------------------------------


class TestScheduledCounters:
    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_line28_sssp_fewer_rule_applications(self, method):
        prog = programs.layered_sssp(0)
        edges = workloads.line_edges(28)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        mono = solve(prog, db, method=method, schedule="monolithic")
        scc = solve(prog, db, method=method, schedule="scc")
        assert scc.instance.equals(mono.instance)
        assert (
            scc.stats["rule_applications"] < mono.stats["rule_applications"]
        )
        # The source and output layers leave the fixpoint loop: their
        # bodies apply exactly once per run.
        by_rel = {r.relations: r for r in scc.strata}
        for comp in (("S",), ("Best",)):
            report = by_rel[comp]
            assert not report.recursive
            assert report.iterations == 1
            assert report.rule_applications == 1
        assert by_rel[("L",)].recursive

    def test_schedule_stats_surface(self):
        prog = programs.layered_sssp(0)
        db = Database(
            pops=TROP, relations={"E": dict(workloads.line_edges(6))}
        )
        result = scheduled_fixpoint(prog, db)
        assert result.stats["strata"] == 3
        assert result.stats["recursive_strata"] == 1
        assert len(result.strata) == 3
        assert result.steps == max(r.steps for r in result.strata)
        payload = [r.as_dict() for r in result.strata]
        assert all("rule_applications" in row for row in payload)

    def test_monolithic_skips_untouched_relation_rebuilds(self):
        # S freezes after iteration 1 and Best tracks L one step behind;
        # the per-relation versioning must skip their index rebuilds.
        prog = programs.layered_sssp(0)
        db = Database(
            pops=TROP, relations={"E": dict(workloads.line_edges(12))}
        )
        mono = solve(prog, db, schedule="monolithic")
        assert mono.stats["rebuild_skips"] > 0

    def test_trace_capture_requires_monolithic(self):
        prog = programs.sssp(0)
        db = Database(
            pops=TROP, relations={"E": dict(workloads.line_edges(4))}
        )
        with pytest.raises(ValueError):
            solve(prog, db, schedule="scc", capture_trace=True)
        # auto falls back to the monolithic global chain.
        result = solve(prog, db, capture_trace=True)
        assert result.trace


# ---------------------------------------------------------------------------
# Scheduled == monolithic on the paper's workloads.
# ---------------------------------------------------------------------------


class TestScheduledDifferentials:
    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_layered_sssp_tropical(self, method):
        prog = programs.layered_sssp(0)
        db = Database(
            pops=TROP, relations={"E": dict(workloads.line_edges(10))}
        )
        mono = solve(prog, db, method=method, schedule="monolithic")
        scc = solve(prog, db, method=method, schedule="scc")
        assert scc.instance.equals(mono.instance)

    def test_lifted_reals_bom_with_output_layer(self):
        rules = list(programs.bill_of_material().rules)
        rules.append(
            Rule(
                "Out",
                terms(["X"]),
                (SumProduct((RelAtom("T", terms(["X"])),)),),
            )
        )
        prog = Program(rules=rules, edbs={"C": 1}, bool_edbs={"E": 2})
        db = Database(
            pops=LIFTED_REAL,
            relations={"C": {("a",): 1.0, ("b",): 2.0, ("c",): 4.0}},
            bool_relations={"E": {("a", "b"), ("b", "c")}},
        )
        mono = solve(prog, db, schedule="monolithic")
        scc = solve(prog, db, schedule="scc")
        assert scc.instance.equals(mono.instance)

    def test_seminaive_accepts_frozen_layer_under_function(self):
        # Monolithic semi-naïve rejects IDB atoms under interpreted
        # functions; once the lower layer is frozen it is a constant to
        # the differential rule, so the scheduled engine accepts it.
        from repro.core.rules import FuncFactor
        from repro.core.seminaive import SemiNaiveError
        from repro.semirings.base import FunctionRegistry

        registry = FunctionRegistry()
        registry.register("double", lambda v: v + v if v != float("inf") else v)
        rules = [
            Rule(
                "Base",
                terms(["X"]),
                (SumProduct((RelAtom("A", terms(["X"])),)),),
            ),
            Rule(
                "Up",
                terms(["X"]),
                (
                    SumProduct(
                        (FuncFactor("double", (RelAtom("Base", terms(["X"])),)),)
                    ),
                    SumProduct(
                        (
                            RelAtom("Up", terms(["Z"])),
                            RelAtom("E", terms(["Z", "X"])),
                        )
                    ),
                ),
            ),
        ]
        prog = Program(rules=rules, edbs={"A": 1, "E": 2})
        db = Database(
            pops=TROP,
            relations={
                "A": {(0,): 3.0, (1,): 5.0},
                "E": dict(workloads.line_edges(4)),
            },
        )
        with pytest.raises(SemiNaiveError):
            solve(
                prog, db, method="seminaive", schedule="monolithic",
                functions=registry,
            )
        scc = solve(
            prog, db, method="seminaive", schedule="scc", functions=registry
        )
        mono = solve(
            prog, db, method="naive", schedule="monolithic",
            functions=registry,
        )
        assert scc.instance.equals(mono.instance)


# ---------------------------------------------------------------------------
# Hypothesis: scheduled == monolithic over random layered programs.
# ---------------------------------------------------------------------------

_PREDS = ["P0", "P1", "P2", "P3"]

#: One body spec: ("edb",) | ("ind", const) | ("copy", j) | ("step", j).
_body_spec = st.one_of(
    st.just(("edb",)),
    st.tuples(st.just("ind"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("copy"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("step"), st.integers(min_value=0, max_value=3)),
)

_program_spec = st.lists(
    st.lists(_body_spec, min_size=1, max_size=2),
    min_size=1,
    max_size=4,
)


def _build_program(spec, acyclic: bool) -> Program:
    rules = []
    for i, bodies in enumerate(spec):
        head = _PREDS[i]
        sum_products = []
        for body in bodies:
            kind = body[0]
            if kind == "edb":
                sum_products.append(
                    SumProduct((RelAtom("A", terms(["X"])),))
                )
            elif kind == "ind":
                sum_products.append(
                    SumProduct(
                        (
                            Indicator(
                                Compare("==", var("X"), Constant(body[1]))
                            ),
                        )
                    )
                )
            else:
                j = body[1] % len(spec)
                if acyclic and j >= i:
                    # Break the cycle: read the EDB instead.
                    sum_products.append(
                        SumProduct((RelAtom("A", terms(["X"])),))
                    )
                elif kind == "copy":
                    sum_products.append(
                        SumProduct((RelAtom(_PREDS[j], terms(["X"])),))
                    )
                else:
                    sum_products.append(
                        SumProduct(
                            (
                                RelAtom(_PREDS[j], terms(["Z"])),
                                RelAtom("E", terms(["Z", "X"])),
                            )
                        )
                    )
        rules.append(Rule(head, terms(["X"]), tuple(sum_products)))
    return Program(rules=rules, edbs={"A": 1, "E": 2})


def _database(pops, values):
    keys = [(0,), (1,), (2,)]
    return Database(
        pops=pops,
        relations={
            "A": dict(zip(keys, values)),
            "E": {(0, 1): values[0], (1, 2): values[1], (2, 3): values[2]},
        },
    )


class TestScheduledInvariance:
    @settings(max_examples=60, deadline=None)
    @given(_program_spec)
    def test_idempotent_semirings_with_cycles(self, spec):
        for pops, values in (
            (BOOL, [True, True, True]),
            (TROP, [1.0, 2.0, 4.0]),
            (THREE, [1, 0, 1]),
        ):
            prog = _build_program(spec, acyclic=False)
            db = _database(pops, values)
            mono = solve(
                prog, db, schedule="monolithic", max_iterations=400
            )
            scc = solve(prog, db, schedule="scc", max_iterations=400)
            assert scc.instance.equals(mono.instance), pops.name
            if getattr(pops, "supports_minus", False):
                semi = solve(
                    prog,
                    db,
                    method="seminaive",
                    schedule="scc",
                    max_iterations=400,
                )
                assert semi.instance.equals(mono.instance), pops.name

    @settings(max_examples=40, deadline=None)
    @given(_program_spec)
    def test_lifted_reals_acyclic(self, spec):
        # ⊕ is not idempotent over R⊥: keep dependencies acyclic so
        # both schedules converge, then require identical valuations.
        prog = _build_program(spec, acyclic=True)
        db = _database(LIFTED_REAL, [1.0, 2.0, 4.0])
        mono = solve(prog, db, schedule="monolithic", max_iterations=400)
        scc = solve(prog, db, schedule="scc", max_iterations=400)
        assert scc.instance.equals(mono.instance)


# ---------------------------------------------------------------------------
# Cost-based join ordering vs the greedy baseline.
# ---------------------------------------------------------------------------


def _star_db():
    # T's and R's X-columns are disjoint (the join is empty), and R's
    # Y-column touches only half of S/U — exactly the shape where
    # walking into a cartesian prefix hurts.
    return Database(
        pops=TROP,
        relations={
            "T": {(i,): 1.0 for i in range(5)},
            "S": {(10 + j,): 1.0 for j in range(4)},
            "U": {(10,): 1.0, (11,): 1.0},
            "R": {(100 + i, 10 + (i % 2)): float(i) for i in range(10)},
        },
    )


def _star_program() -> Program:
    body = SumProduct(
        (
            RelAtom("T", terms(["X"])),
            RelAtom("S", terms(["Y"])),
            RelAtom("U", terms(["Y"])),
            RelAtom("R", terms(["X", "Y"])),
        )
    )
    return Program(
        rules=[Rule("Q", terms(["X"]), (body,))],
        edbs={"T": 1, "S": 1, "U": 1, "R": 2},
    )


class TestCostBasedOrdering:
    def test_dp_beats_greedy_on_star_join(self):
        # The greedy tie-break walks into a T×(U⋈S) cartesian before it
        # ever consults R; the subset DP sees that opening with T makes
        # R an immediately-failing probe and prices the whole order ≥10%
        # cheaper, so it deviates.  4 guards: the exact-DP regime.
        db = _star_db()
        dp = solve(_star_program(), db, plan="indexed")
        greedy = solve(_star_program(), db, plan="indexed-greedy")
        assert dp.instance.equals(greedy.instance)
        assert dp.stats["keys_examined"] < greedy.stats["keys_examined"]

    @pytest.mark.parametrize(
        "tag,prog,db,method",
        [
            (
                "e12-line12-naive",
                programs.sssp(0),
                Database(
                    pops=TROP,
                    relations={"E": dict(workloads.line_edges(12))},
                ),
                "naive",
            ),
            (
                "e12-line12-seminaive",
                programs.sssp(0),
                Database(
                    pops=TROP,
                    relations={"E": dict(workloads.line_edges(12))},
                ),
                "seminaive",
            ),
            (
                "e12-line28-naive",
                programs.sssp(0),
                Database(
                    pops=TROP,
                    relations={"E": dict(workloads.line_edges(28))},
                ),
                "naive",
            ),
            (
                "e23-grid3-naive",
                programs.apsp(),
                Database(
                    pops=TROP,
                    relations={"E": dict(workloads.grid_edges(3, 3))},
                ),
                "naive",
            ),
            (
                "e23-grid3-seminaive",
                programs.apsp(),
                Database(
                    pops=TROP,
                    relations={"E": dict(workloads.grid_edges(3, 3))},
                ),
                "seminaive",
            ),
            (
                "e12-layered-line28",
                programs.layered_sssp(0),
                Database(
                    pops=TROP,
                    relations={"E": dict(workloads.line_edges(28))},
                ),
                "naive",
            ),
            (
                "star-join",
                _star_program(),
                _star_db(),
                "naive",
            ),
        ],
    )
    def test_dp_never_exceeds_greedy_on_baseline_benchmarks(
        self, tag, prog, db, method
    ):
        """The acceptance gate: DP ≤ greedy on every checked-in
        baseline benchmark workload (monolithic and scheduled)."""
        for schedule in ("monolithic", "scc"):
            dp = solve(prog, db, method=method, plan="indexed", schedule=schedule)
            greedy = solve(
                prog, db, method=method, plan="indexed-greedy",
                schedule=schedule,
            )
            assert dp.instance.equals(greedy.instance), (tag, schedule)
            assert (
                dp.stats["keys_examined"] <= greedy.stats["keys_examined"]
            ), (tag, schedule)

    def test_order_guards_exact_vs_lookahead_consistency(self):
        # 7 guards exceeds the DP limit: the lookahead must still emit
        # a permutation and keep the probe pipeline sound.
        guards = [
            Guard(args=terms(["X%d" % i, "X%d" % (i + 1)]),
                  keys=lambda i=i: [(i, i + 1), (i, i + 2)])
            for i in range(7)
        ]
        from repro.core.planner import _guard_index

        indexes = [_guard_index(g, None) for g in guards]
        order = order_guards(guards, indexes, set(), order="cost")
        assert sorted(order) == list(range(7))

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            order_guards([], [], set(), order="mystery")
        prog = programs.sssp(0)
        db = Database(
            pops=TROP, relations={"E": dict(workloads.line_edges(3))}
        )
        with pytest.raises(ValueError):
            solve(prog, db, plan="indexed-mystery")

    def test_greedy_plan_still_differential_to_naive(self):
        prog = programs.apsp()
        db = Database(
            pops=TROP, relations={"E": dict(workloads.grid_edges(3, 3))}
        )
        greedy = solve(prog, db, plan="indexed-greedy")
        seed = solve(prog, db, plan="naive")
        assert greedy.instance.equals(seed.instance)


# ---------------------------------------------------------------------------
# Demand-roots pruning of the condensation (PR 10).
# ---------------------------------------------------------------------------


class TestRestrictToRoots:
    """``_restrict_to_roots`` — the lever the demand path pulls to skip
    strata its query adornment never reaches."""

    def _pruned(self, roots):
        from repro.core.scheduler import _restrict_to_roots

        return _restrict_to_roots(
            condensation(programs.graph_analytics()), roots
        )

    def test_keeps_only_components_the_root_reads(self):
        pruned = self._pruned(("T",))
        kept = {name for comp in pruned.components for name in comp}
        assert "T" in kept
        assert kept.isdisjoint({"Rev", "C", "Out"})

    def test_remapped_indexes_stay_topological(self):
        pruned = self._pruned(("T",))
        for i, deps in enumerate(pruned.dependencies):
            for j in deps:
                assert 0 <= j < len(pruned.components)
                assert j < i  # Kahn order survives the remap

    def test_recursive_flags_survive(self):
        full = condensation(programs.graph_analytics())
        flags = dict(zip(full.components, full.recursive))
        pruned = self._pruned(("T",))
        for comp, recursive in zip(pruned.components, pruned.recursive):
            assert flags[comp] == recursive

    def test_all_roots_is_identity(self):
        full = condensation(programs.graph_analytics())
        pruned = self._pruned(("T", "Rev", "C", "Out"))
        assert pruned.components == full.components
        assert pruned.recursive == full.recursive

    def test_unknown_root_keeps_nothing(self):
        pruned = self._pruned(("NoSuchRelation",))
        assert pruned.components == []

    def test_scheduled_fixpoint_skips_pruned_strata(self):
        db = Database(
            pops=TROP, relations={"E": dict(workloads.grid_edges(3, 3))}
        )
        prog = programs.graph_analytics()
        full = scheduled_fixpoint(prog, db, method="seminaive")
        pruned = scheduled_fixpoint(
            prog, db, method="seminaive", roots=("T",)
        )
        assert dict(pruned.instance.support("T")) == dict(
            full.instance.support("T")
        )
        for view in ("Rev", "C", "Out"):
            assert full.instance.support(view)
            assert not pruned.instance.support(view)
