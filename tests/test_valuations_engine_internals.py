"""Engine internals: valuation enumeration, guards, ICO properties."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import programs
from repro.core import Database, Instance, NaiveEvaluator
from repro.core.ast import (
    BoolAtom,
    Compare,
    Constant,
    TrueCond,
    Variable,
    terms,
    var,
)
from repro.core.valuations import (
    FactorEvaluator,
    Guard,
    body_guards,
    enumerate_valuations,
)
from repro.core.rules import FuncFactor, Indicator, KeyAsValue, RelAtom, SumProduct, ValueConst
from repro.semirings import LIFTED_REAL, THREE, TROP
from repro.semirings.base import FunctionRegistry


def bool_lookup_factory(facts):
    return lambda rel, key: key in facts.get(rel, set())


class TestEnumeration:
    def test_no_variables_yields_single_empty_valuation(self):
        vals = list(
            enumerate_valuations([], [], ["a"], TrueCond(), lambda r, k: False)
        )
        assert vals == [{}]

    def test_guard_driven_join(self):
        guard1 = Guard(
            args=terms(["X", "Y"]),
            keys=lambda: [("a", "b"), ("b", "c")],
        )
        guard2 = Guard(args=terms(["Y", "Z"]), keys=lambda: [("b", "c")])
        vals = list(
            enumerate_valuations(
                ["X", "Y", "Z"],
                [guard1, guard2],
                [],
                TrueCond(),
                lambda r, k: False,
            )
        )
        assert vals == [{"X": "a", "Y": "b", "Z": "c"}]

    def test_constant_positions_filter(self):
        guard = Guard(
            args=(Constant("a"), Variable("Y")),
            keys=lambda: [("a", "b"), ("x", "y")],
        )
        vals = list(
            enumerate_valuations(
                ["Y"], [guard], [], TrueCond(), lambda r, k: False
            )
        )
        assert vals == [{"Y": "b"}]

    def test_fallback_product_with_condition(self):
        cond = Compare("!=", var("X"), var("Y"))
        vals = list(
            enumerate_valuations(
                ["X", "Y"], [], ["a", "b"], cond, lambda r, k: False
            )
        )
        assert len(vals) == 2
        assert all(v["X"] != v["Y"] for v in vals)

    def test_no_duplicate_valuations(self):
        guard1 = Guard(args=terms(["X"]), keys=lambda: [("a",), ("b",)])
        guard2 = Guard(args=terms(["X"]), keys=lambda: [("a",), ("b",)])
        vals = list(
            enumerate_valuations(
                ["X"], [guard1, guard2], [], TrueCond(), lambda r, k: False
            )
        )
        assert sorted(v["X"] for v in vals) == ["a", "b"]

    def test_mismatched_key_arity_skipped(self):
        guard = Guard(args=terms(["X"]), keys=lambda: [("a", "b"), ("c",)])
        vals = list(
            enumerate_valuations(
                ["X"], [guard], [], TrueCond(), lambda r, k: False
            )
        )
        assert vals == [{"X": "c"}]


class TestGuardEligibility:
    def test_sparse_semiring_uses_idb_and_edb_guards(self):
        db = Database(pops=TROP, relations={"E": {("a", "b"): 1.0}})
        body = SumProduct(
            (
                RelAtom("T", terms(["X", "Z"])),
                RelAtom("E", terms(["Z", "Y"])),
            )
        )
        guards = body_guards(
            body,
            TROP,
            db,
            frozenset({"T"}),
            lambda name: lambda: [("a", "a")],
        )
        assert len(guards) == 2

    def test_three_only_bool_guards(self):
        """Over THREE, IDB atoms are not guard-eligible (⊥ ≠ 0)."""
        db = Database(pops=THREE, bool_relations={"E": {("a", "b")}})
        body = SumProduct(
            (
                RelAtom("E", terms(["X", "Y"])),
                RelAtom("W", terms(["Y"])),
            )
        )
        guards = body_guards(
            body, THREE, db, frozenset({"W"}), lambda n: lambda: []
        )
        assert len(guards) == 1  # only the Boolean E atom

    def test_lifted_reals_no_relation_guards(self):
        db = Database(pops=LIFTED_REAL, relations={"C": {("a",): 1.0}})
        body = SumProduct((RelAtom("C", terms(["X"])),))
        guards = body_guards(
            body, LIFTED_REAL, db, frozenset(), lambda n: lambda: []
        )
        assert guards == []

    def test_function_wrapped_atoms_never_guard(self):
        db = Database(pops=TROP, relations={"E": {("a", "b"): 1.0}})
        body = SumProduct(
            (FuncFactor("ident", (RelAtom("E", terms(["X", "Y"])),)),)
        )
        guards = body_guards(
            body, TROP, db, frozenset(), lambda n: lambda: []
        )
        assert guards == []


class TestFactorEvaluator:
    def test_all_factor_kinds(self):
        registry = FunctionRegistry()
        registry.register("double", lambda v: v * 2)
        registry.register("as_float", float)
        db = Database(
            pops=TROP,
            relations={"E": {("a", "b"): 1.5}},
            bool_relations={"B": {("a",)}},
        )
        ev = FactorEvaluator(TROP, db, registry)
        idb = Instance(TROP, {"T": {("a",): 7.0}})
        idbs = frozenset({"T"})
        valuation = {"X": "a", "Y": "b", "C": 3}

        assert ev.factor_value(
            RelAtom("E", terms(["X", "Y"])), valuation, idb, idbs
        ) == 1.5
        assert ev.factor_value(
            RelAtom("T", terms(["X"])), valuation, idb, idbs
        ) == 7.0
        assert ev.factor_value(ValueConst(2.0), valuation, idb, idbs) == 2.0
        assert ev.factor_value(
            Indicator(BoolAtom("B", terms(["X"]))), valuation, idb, idbs
        ) == TROP.one
        assert ev.factor_value(
            Indicator(BoolAtom("B", terms(["Y"]))), valuation, idb, idbs
        ) == TROP.zero
        assert ev.factor_value(
            FuncFactor("double", (ValueConst(2.0),)), valuation, idb, idbs
        ) == 4.0
        assert ev.factor_value(
            KeyAsValue(var("C"), convert="as_float"), valuation, idb, idbs
        ) == 3.0
        assert ev.factor_value(
            KeyAsValue(var("C")), valuation, idb, idbs
        ) == 3

    def test_bool_relation_as_factor_embeds(self):
        db = Database(pops=THREE, bool_relations={"E": {("a", "b")}})
        ev = FactorEvaluator(THREE, db)
        idb = Instance(THREE)
        present = ev.factor_value(
            RelAtom("E", terms(["X", "Y"])), {"X": "a", "Y": "b"}, idb, frozenset()
        )
        missing = ev.factor_value(
            RelAtom("E", terms(["X", "Y"])), {"X": "b", "Y": "a"}, idb, frozenset()
        )
        assert present is True
        assert missing is False  # 0 of THREE, not ⊥


class TestIcoProperties:
    """Semantic properties of the immediate consequence operator."""

    edge_sets = st.sets(
        st.tuples(st.sampled_from("abcd"), st.sampled_from("abcd")).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=6,
    )

    @settings(max_examples=20, deadline=None)
    @given(edge_sets)
    def test_ico_monotone_over_trop(self, edges):
        db = Database(
            pops=TROP, relations={"E": {e: 1.0 for e in edges}}
        )
        evaluator = NaiveEvaluator(programs.apsp(), db)
        lo = Instance(TROP)
        hi = Instance(TROP)
        for i, e in enumerate(sorted(edges)):
            hi.set("T", e, float(i + 1))
            lo.set("T", e, float(i + 2))  # larger = lower in ⊑
        assert lo.leq(hi)
        assert evaluator.ico(lo).leq(evaluator.ico(hi))

    @settings(max_examples=20, deadline=None)
    @given(edge_sets)
    def test_naive_trace_is_omega_chain(self, edges):
        db = Database(
            pops=TROP, relations={"E": {e: 1.0 for e in edges}}
        )
        evaluator = NaiveEvaluator(programs.apsp(), db)
        result = evaluator.run(capture_trace=True)
        for earlier, later in zip(result.trace, result.trace[1:]):
            assert earlier.leq(later)

    def test_ico_of_fixpoint_is_fixpoint(self, fig2a_trop_db):
        evaluator = NaiveEvaluator(programs.sssp("a"), fig2a_trop_db)
        result = evaluator.run()
        again = evaluator.ico(result.instance)
        assert again.equals(result.instance)
