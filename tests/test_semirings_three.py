"""THREE and FOUR (Sections 2.5.2, 7.2, 7.3)."""

from __future__ import annotations


from repro.semirings import BOTTOM, FOUR, THREE, TOP, four_not, three_not


class TestThree:
    def test_kleene_or(self):
        assert THREE.add(False, False) is False
        assert THREE.add(False, BOTTOM) is BOTTOM
        assert THREE.add(BOTTOM, BOTTOM) is BOTTOM
        assert THREE.add(False, True) is True
        assert THREE.add(BOTTOM, True) is True

    def test_kleene_and(self):
        assert THREE.mul(True, True) is True
        assert THREE.mul(True, BOTTOM) is BOTTOM
        assert THREE.mul(BOTTOM, BOTTOM) is BOTTOM
        assert THREE.mul(False, BOTTOM) is False  # 0 absorbs even ⊥
        assert THREE.mul(False, True) is False

    def test_is_semiring_unlike_lifted_booleans(self):
        """0 ∧ ⊥ = 0 distinguishes THREE from B⊥ (Section 2.5.2)."""
        assert THREE.is_semiring
        assert THREE.eq(THREE.mul(THREE.zero, BOTTOM), THREE.zero)

    def test_knowledge_order(self):
        assert THREE.leq(BOTTOM, False)
        assert THREE.leq(BOTTOM, True)
        assert not THREE.leq(False, True)
        assert not THREE.leq(True, False)
        assert THREE.leq(True, True)

    def test_mul_not_strict(self):
        assert not THREE.mul_is_strict

    def test_core_semiring_is_boolean_like(self):
        """THREE ∨ ⊥ = {⊥, 1} ≅ B (Section 2.5.2)."""
        core = THREE.core_semiring()
        saturations = {
            repr(THREE.saturate(v)) for v in (BOTTOM, False, True)
        }
        assert saturations == {"⊥", "True"}
        assert core.eq(core.zero, BOTTOM)
        assert core.eq(core.one, True)
        # 0-stable: 1 ⊕ c = 1 for c ∈ {⊥, 1}.
        for c in (BOTTOM, True):
            assert core.eq(core.add(core.one, c), core.one)

    def test_not_function(self):
        assert three_not(True) is False
        assert three_not(False) is True
        assert three_not(BOTTOM) is BOTTOM

    def test_not_is_knowledge_monotone(self):
        vals = (BOTTOM, False, True)
        for a in vals:
            for b in vals:
                if THREE.leq(a, b):
                    assert THREE.leq(three_not(a), three_not(b))


class TestFour:
    def test_truth_lub_glb(self):
        # Fig. 5: 0 ≤t ⊥,⊤ ≤t 1 with ⊥,⊤ truth-incomparable.
        assert FOUR.add(BOTTOM, TOP) is True
        assert FOUR.mul(BOTTOM, TOP) is False
        assert FOUR.add(False, TOP) is TOP
        assert FOUR.mul(True, TOP) is TOP
        assert FOUR.add(False, BOTTOM) is BOTTOM
        assert FOUR.mul(True, BOTTOM) is BOTTOM
        assert FOUR.mul(False, TOP) is False

    def test_knowledge_order(self):
        assert FOUR.leq(BOTTOM, False)
        assert FOUR.leq(BOTTOM, TOP)
        assert FOUR.leq(True, TOP)
        assert not FOUR.leq(False, True)
        assert not FOUR.leq(TOP, True)

    def test_not_function(self):
        assert four_not(True) is False
        assert four_not(False) is True
        assert four_not(BOTTOM) is BOTTOM
        assert four_not(TOP) is TOP

    def test_not_is_knowledge_monotone(self):
        vals = (BOTTOM, False, True, TOP)
        for a in vals:
            for b in vals:
                if FOUR.leq(a, b):
                    assert FOUR.leq(four_not(a), four_not(b))

    def test_restriction_to_three_agrees(self):
        for a in (BOTTOM, False, True):
            for b in (BOTTOM, False, True):
                assert FOUR.add(a, b) == THREE.add(a, b) or (
                    FOUR.add(a, b) is THREE.add(a, b)
                )
                assert FOUR.mul(a, b) == THREE.mul(a, b) or (
                    FOUR.mul(a, b) is THREE.mul(a, b)
                )
