"""Product POPS (§2.5.4), the free semiring, and base-class machinery."""

from __future__ import annotations

import pytest

from repro.fixpoint import kleene_fixpoint, DivergenceError
from repro.semirings import (
    BOOL,
    BOTTOM,
    FREE,
    LEX_NN,
    LIFTED_REAL,
    NAT,
    TROP,
    AlgebraError,
    CoreSemiring,
    FunctionRegistry,
    ProductPOPS,
    monomial,
)
from repro.semirings.stability import core_is_trivial


class TestProductPOPS:
    def test_componentwise_operations(self):
        prod = ProductPOPS(BOOL, TROP)
        a = (True, 3.0)
        b = (False, 5.0)
        assert prod.add(a, b) == (True, 3.0)
        assert prod.mul(a, b) == (False, 8.0)
        assert prod.bottom == (False, float("inf"))

    def test_example_2_11_nontrivial_core(self):
        """Naturally-ordered × strict-plus POPS has core S × {⊥}."""
        prod = ProductPOPS(TROP, LIFTED_REAL)
        assert not core_is_trivial(prod)
        sat = prod.saturate((3.0, 5.0))
        assert sat == (3.0, BOTTOM)
        # The core is {(x, ⊥)}: non-trivial (varies in x) but collapsed
        # in the second coordinate.
        assert prod.saturate((7.0, 1.0)) == (7.0, BOTTOM)
        assert prod.saturate((7.0, 2.0)) == (7.0, BOTTOM)

    def test_flags_combine(self):
        prod = ProductPOPS(BOOL, TROP)
        assert prod.is_semiring
        assert prod.is_naturally_ordered
        prod2 = ProductPOPS(BOOL, LIFTED_REAL)
        assert not prod2.is_semiring
        assert not prod2.is_naturally_ordered


class TestLexDivergence:
    def test_case_i_no_fixpoint(self):
        """F(x,y) = (x, y+1): the ω-sup (1,0) is not a fixpoint (§4.2 i)."""
        step = lambda v: LEX_NN.add(v, (0, 1))
        with pytest.raises(DivergenceError):
            kleene_fixpoint(step, LEX_NN.bottom, LEX_NN.eq, max_steps=200)
        sup = LEX_NN.omega_sup((0, 0))
        assert sup == (1, 0)
        assert step(sup) == (1, 1) != sup

    def test_chain_is_increasing(self):
        v = LEX_NN.bottom
        for _ in range(10):
            nxt = LEX_NN.add(v, (0, 1))
            assert LEX_NN.lt(v, nxt)
            assert LEX_NN.leq(nxt, LEX_NN.omega_sup((0, 0)))
            v = nxt


class TestFreeSemiring:
    def test_generators_and_products(self):
        x = FREE.generator("x")
        y = FREE.generator("y")
        xy = FREE.mul(x, y)
        assert FREE.coefficient(xy, monomial({"x": 1, "y": 1})) == 1
        assert FREE.coefficient(FREE.add(xy, xy), monomial({"x": 1, "y": 1})) == 2

    def test_distributes_formally(self):
        x, y, z = (FREE.generator(s) for s in "xyz")
        lhs = FREE.mul(x, FREE.add(y, z))
        rhs = FREE.add(FREE.mul(x, y), FREE.mul(x, z))
        assert FREE.eq(lhs, rhs)

    def test_natural_order_is_coefficientwise(self):
        x = FREE.generator("x")
        two_x = FREE.add(x, x)
        assert FREE.leq(x, two_x)
        assert not FREE.leq(two_x, x)

    def test_geometric_counts_paths(self):
        """(1 + x)² expansion: coefficient of x is 2."""
        x = FREE.generator("x")
        sq = FREE.mul(FREE.add(FREE.one, x), FREE.add(FREE.one, x))
        assert FREE.coefficient(sq, monomial({"x": 1})) == 2
        assert FREE.coefficient(sq, ()) == 1
        assert FREE.coefficient(sq, monomial({"x": 2})) == 1


class TestBaseMachinery:
    def test_core_semiring_requires_strict_mul(self):
        class NonStrict(type(TROP)):
            mul_is_strict = False

        with pytest.raises(AlgebraError):
            CoreSemiring(NonStrict())

    def test_core_of_naturally_ordered_is_itself(self):
        core = TROP.core_semiring()
        assert core.eq(core.zero, TROP.zero)
        assert core.eq(core.one, TROP.one)
        assert core.add(3.0, 5.0) == 3.0
        assert core.is_valid(3.0)

    def test_geometric_negative_raises(self):
        with pytest.raises(AlgebraError):
            NAT.geometric(2, -1)
        with pytest.raises(AlgebraError):
            NAT.power(2, -1)
        with pytest.raises(AlgebraError):
            NAT.scale_nat(-1, 2)

    def test_add_many_mul_many_units(self):
        assert NAT.add_many([]) == 0
        assert NAT.mul_many([]) == 1
        assert NAT.add_many([1, 2, 3]) == 6
        assert NAT.mul_many([2, 3, 4]) == 24

    def test_function_registry(self):
        reg = FunctionRegistry()
        reg.register("inc", lambda v: v + 1)
        assert "inc" in reg
        assert reg.resolve("inc")(4) == 5
        with pytest.raises(AlgebraError):
            reg.resolve("missing")

    def test_core_sample_values_deduplicate(self):
        core = LIFTED_REAL.core_semiring()
        assert len(core.sample_values()) == 1  # everything saturates to ⊥
