"""Section 4.5 extensions: multiple value spaces, keys-to-values."""

from __future__ import annotations


from repro import programs
from repro.core import (
    BoolAtom,
    Database,
    HybridEvaluator,
    Indicator,
    Program,
    RelAtom,
    Rule,
    SumProduct,
    ThresholdRule,
    naive_fixpoint,
    terms,
)
from repro.semirings import REAL_PLUS, TROP
from repro.semirings.base import FunctionRegistry


def company_control_setup(shares):
    """Build Example 4.3: CV/T over R+, C Boolean, threshold > 0.5.

    ``shares``: dict (owner, owned) → fraction.
    """
    companies = sorted({c for pair in shares for c in pair})
    cv_rule = Rule(
        "CV",
        terms(["X", "Z", "Y"]),
        (
            SumProduct(
                (
                    Indicator(BoolAtom("Same", terms(["X", "Z"]))),
                    RelAtom("S", terms(["X", "Y"])),
                )
            ),
            SumProduct(
                (
                    Indicator(BoolAtom("C", terms(["X", "Z"]))),
                    RelAtom("S", terms(["Z", "Y"])),
                )
            ),
        ),
    )
    t_rule = Rule(
        "T",
        terms(["X", "Y"]),
        (
            SumProduct(
                (RelAtom("CV", terms(["X", "Z", "Y"])),),
                condition=BoolAtom("Company", terms(["Z"])),
            ),
        ),
    )
    program = Program(
        rules=[cv_rule, t_rule],
        edbs={"S": 2},
        bool_edbs={"Same": 2, "Company": 1, "C": 2},
    )
    threshold = ThresholdRule(
        head_relation="C",
        head_args=terms(["X", "Y"]),
        body=SumProduct(
            (RelAtom("T", terms(["X", "Y"])),),
            condition=BoolAtom("Company", terms(["X"]))
            & BoolAtom("Company", terms(["Y"])),
        ),
        predicate=lambda v: v > 0.5,
    )
    db = Database(
        pops=REAL_PLUS,
        relations={"S": {k: v for k, v in shares.items()}},
        bool_relations={
            "Company": {(c,) for c in companies},
            "Same": {(c, c) for c in companies},
        },
    )
    return program, threshold, db


class TestCompanyControl:
    def test_direct_majority(self):
        program, threshold, db = company_control_setup(
            {("a", "b"): 0.6, ("b", "c"): 0.3}
        )
        hybrid = HybridEvaluator(program, [threshold], db)
        hybrid.run()
        assert ("a", "b") in hybrid.bool_facts("C")
        assert ("b", "c") not in hybrid.bool_facts("C")

    def test_transitive_control_via_recursion(self):
        """a controls b directly; a+b's combined shares control c —
        the recursion-through-aggregation showcase of Example 4.3."""
        program, threshold, db = company_control_setup(
            {
                ("a", "b"): 0.6,
                ("a", "c"): 0.3,
                ("b", "c"): 0.3,
            }
        )
        hybrid = HybridEvaluator(program, [threshold], db)
        hybrid.run()
        control = hybrid.bool_facts("C")
        assert ("a", "b") in control
        assert ("a", "c") in control  # 0.3 direct + 0.3 via controlled b
        assert ("b", "c") not in control

    def test_no_control_without_majority(self):
        program, threshold, db = company_control_setup(
            {("a", "b"): 0.5, ("b", "a"): 0.5}
        )
        hybrid = HybridEvaluator(program, [threshold], db)
        hybrid.run()
        assert hybrid.bool_facts("C") == set()

    def test_chain_of_control(self):
        """Control propagates down a chain a→b→c→d."""
        program, threshold, db = company_control_setup(
            {
                ("a", "b"): 0.9,
                ("b", "c"): 0.9,
                ("c", "d"): 0.9,
            }
        )
        hybrid = HybridEvaluator(program, [threshold], db)
        hybrid.run()
        control = hybrid.bool_facts("C")
        assert {("a", "b"), ("a", "c"), ("a", "d")} <= control
        assert {("b", "c"), ("b", "d"), ("c", "d")} <= control


class TestKeysToValues:
    def test_shortest_length_from_bool_relation(self):
        prog = programs.shortest_length_from_bool()
        registry = FunctionRegistry()
        registry.register("key_to_trop", float)
        db = Database(
            pops=TROP,
            bool_relations={
                "Length": {("a", "b", 3), ("a", "b", 7), ("a", "c", 2)}
            },
        )
        result = naive_fixpoint(prog, db, functions=registry)
        assert result.instance.get("ShortestLength", ("a", "b")) == 3.0
        assert result.instance.get("ShortestLength", ("a", "c")) == 2.0
