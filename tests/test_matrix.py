"""Matrix algebra over semirings (Section 5.5, Lemma 5.20)."""

from __future__ import annotations

import pytest

from repro.semirings import (
    BOOL,
    INF,
    TROP,
    AlgebraError,
    KleeneClosure,
    TropicalPSemiring,
    cycle_matrix,
    identity_matrix,
    mat_add,
    mat_eq,
    mat_geometric,
    mat_mul,
    mat_vec,
    matrix_stability_index,
    zero_matrix,
)


def test_identity_and_zero():
    ident = identity_matrix(TROP, 3)
    assert ident[0][0] == 0.0 and ident[0][1] == INF
    z = zero_matrix(TROP, 2, 3)
    assert z == [[INF] * 3, [INF] * 3]


def test_mat_mul_is_min_plus():
    a = [[0.0, 1.0], [INF, 0.0]]
    b = [[0.0, 5.0], [INF, 2.0]]
    prod = mat_mul(TROP, a, b)
    assert prod == [[0.0, 3.0], [INF, 2.0]]


def test_mat_vec():
    a = [[0.0, 1.0], [INF, 0.0]]
    v = [2.0, 7.0]
    assert mat_vec(TROP, a, v) == [2.0, 7.0]


def test_mat_geometric_accumulates_paths():
    """A^(q) over Trop+ holds shortest ≤q-hop path lengths."""
    a = [
        [INF, 1.0, INF],
        [INF, INF, 2.0],
        [INF, INF, INF],
    ]
    g2 = mat_geometric(TROP, a, 2)
    assert g2[0][2] == 3.0  # two hops
    g1 = mat_geometric(TROP, a, 1)
    assert g1[0][2] == INF  # not yet reachable in one hop


class TestMatrixStability:
    def test_boolean_matrix_stable_within_n(self):
        a = [[False, True], [True, False]]
        report = matrix_stability_index(BOOL, a)
        assert report.stable
        assert report.index <= 2

    def test_lemma_5_20_cycle_attains_bound(self):
        """The n-cycle over Trop+_p has stability index (p+1)·n − 1."""
        for p in (0, 1, 2):
            tp = TropicalPSemiring(p)
            for n in (2, 3, 4):
                a = cycle_matrix(tp, n, tp.singleton(1.0))
                report = matrix_stability_index(tp, a)
                assert report.stable
                assert report.index == (p + 1) * n - 1, (p, n)

    def test_lemma_5_20_upper_bound_random(self):
        import random

        rng = random.Random(7)
        p, n = 1, 4
        tp = TropicalPSemiring(p)
        for _ in range(10):
            a = [
                [
                    tp.singleton(round(rng.uniform(1, 5), 2))
                    if rng.random() < 0.5
                    else tp.zero
                    for _ in range(n)
                ]
                for _ in range(n)
            ]
            report = matrix_stability_index(tp, a)
            assert report.stable
            assert report.index <= (p + 1) * n - 1


class TestKleeneClosure:
    def test_requires_star_or_p(self):
        with pytest.raises(AlgebraError):
            KleeneClosure(structure=TROP)

    def test_closure_is_all_pairs_shortest_paths(self):
        a = [
            [INF, 1.0, 5.0],
            [INF, INF, 3.0],
            [INF, INF, INF],
        ]
        closure = KleeneClosure(structure=TROP, stability_p=0).closure(a)
        assert closure[0][1] == 1.0
        assert closure[0][2] == 4.0  # via the middle node
        assert closure[1][2] == 3.0
        assert closure[0][0] == 0.0  # identity on the diagonal

    def test_solve_affine_matches_iteration(self):
        a = [
            [INF, 2.0],
            [1.0, INF],
        ]
        b = [0.0, INF]
        solver = KleeneClosure(structure=TROP, stability_p=0)
        x = solver.solve_affine(a, b)
        # Iterate x ← A·x ⊕ b to convergence and compare.
        cur = [INF, INF]
        for _ in range(20):
            nxt = [
                TROP.add(v, w)
                for v, w in zip(mat_vec(TROP, a, cur), b)
            ]
            if nxt == cur:
                break
            cur = nxt
        assert x == cur

    def test_closure_over_tropp_counts_multiple_paths(self):
        """Over Trop+_1 the closure carries the two best path lengths."""
        t1 = TropicalPSemiring(1)
        a = [
            [t1.zero, t1.from_values([1.0, 4.0])],
            [t1.zero, t1.zero],
        ]
        closure = KleeneClosure(structure=t1, stability_p=1).closure(a)
        assert closure[0][1] == (1.0, 4.0)

    def test_cycle_closure_loops_p_times(self):
        """Closure entry 1→n of the cycle holds the p+1 loopings
        (Lemma 5.20's lower-bound discussion)."""
        p, n = 2, 3
        tp = TropicalPSemiring(p)
        a = cycle_matrix(tp, n, tp.singleton(1.0))
        closure = KleeneClosure(structure=tp, stability_p=(p + 1) * n - 1).closure(a)
        # Paths 0→2: direct (2 edges), plus 1 loop (5), plus 2 loops (8).
        assert closure[0][n - 1] == (2.0, 5.0, 8.0)


def test_mat_add_and_eq():
    a = [[1.0, INF], [0.0, 2.0]]
    b = [[3.0, 4.0], [INF, 1.0]]
    s = mat_add(TROP, a, b)
    assert s == [[1.0, 4.0], [0.0, 1.0]]
    assert mat_eq(TROP, s, s)
    assert not mat_eq(TROP, a, b)
