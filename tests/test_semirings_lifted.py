"""Lifted / completed POPS (Section 2.5.1) and Lemma 2.8."""

from __future__ import annotations

import pytest

from repro.semirings import (
    BOTTOM,
    LIFTED_NAT,
    LIFTED_REAL,
    NAT,
    REAL,
    TOP,
    CompletedPOPS,
    LiftedPOPS,
)
from repro.semirings.stability import core_is_trivial


class TestLiftedReals:
    def test_strict_operations(self):
        assert LIFTED_REAL.add(3.0, BOTTOM) is BOTTOM
        assert LIFTED_REAL.mul(3.0, BOTTOM) is BOTTOM
        assert LIFTED_REAL.add(BOTTOM, BOTTOM) is BOTTOM
        assert LIFTED_REAL.mul(0.0, BOTTOM) is BOTTOM  # 0 does NOT absorb ⊥

    def test_not_a_semiring(self):
        """0 ⊗ ⊥ = ⊥ ≠ 0: lifting never yields a semiring (§2.5.1)."""
        assert not LIFTED_REAL.is_semiring
        assert not LIFTED_REAL.eq(
            LIFTED_REAL.mul(LIFTED_REAL.zero, BOTTOM), LIFTED_REAL.zero
        )

    def test_base_arithmetic_preserved(self):
        assert LIFTED_REAL.add(2.0, 3.5) == 5.5
        assert LIFTED_REAL.mul(2.0, 3.5) == 7.0
        assert LIFTED_REAL.zero == 0.0
        assert LIFTED_REAL.one == 1.0

    def test_flat_order(self):
        assert LIFTED_REAL.leq(BOTTOM, 3.0)
        assert LIFTED_REAL.leq(3.0, 3.0)
        assert not LIFTED_REAL.leq(3.0, 4.0)
        assert not LIFTED_REAL.leq(3.0, BOTTOM)

    def test_core_semiring_is_trivial(self):
        assert core_is_trivial(LIFTED_REAL)
        core = LIFTED_REAL.core_semiring()
        assert core.eq(core.zero, BOTTOM)
        assert core.eq(core.one, BOTTOM)
        assert core.eq(core.add(core.one, core.one), BOTTOM)

    def test_bottom_identity_is_shared_and_copy_safe(self):
        import copy

        assert copy.deepcopy(BOTTOM) is BOTTOM
        assert copy.copy(BOTTOM) is BOTTOM
        assert LIFTED_REAL.bottom is LIFTED_NAT.bottom


class TestLemma28:
    """Lemma 2.8: no POPS extension of R satisfies the absorption law.

    The algebraic proof forces ⊥ ⊕ x = ⊥ and ⊥ ⊗ x = ⊥ (x ≠ 0) in any
    POPS extension of the full reals; we verify those forced identities
    on the lifted reals and exhibit the absorption failure.
    """

    def test_forced_identities(self):
        for x in (-2.0, 1.0, 3.5):
            assert LIFTED_REAL.add(BOTTOM, x) is BOTTOM
            assert LIFTED_REAL.mul(BOTTOM, x) is BOTTOM

    def test_absorption_fails(self):
        assert LIFTED_REAL.mul(BOTTOM, 0.0) is BOTTOM
        assert BOTTOM is not LIFTED_REAL.zero


class TestCompleted:
    @pytest.fixture()
    def completed(self):
        return CompletedPOPS(REAL)

    def test_top_propagates_except_through_bottom(self, completed):
        assert completed.add(3.0, TOP) is TOP
        assert completed.mul(3.0, TOP) is TOP
        assert completed.add(BOTTOM, TOP) is BOTTOM
        assert completed.mul(BOTTOM, TOP) is BOTTOM

    def test_order(self, completed):
        assert completed.leq(BOTTOM, 1.0)
        assert completed.leq(1.0, TOP)
        assert completed.leq(BOTTOM, TOP)
        assert not completed.leq(1.0, 2.0)
        assert not completed.leq(TOP, 1.0)

    def test_core_trivial(self, completed):
        assert core_is_trivial(completed)


def test_lifted_nat_validation():
    assert LIFTED_NAT.is_valid(BOTTOM)
    assert LIFTED_NAT.is_valid(4)
    assert not LIFTED_NAT.is_valid(-1)
    assert not LIFTED_NAT.is_valid(2.5)


def test_lifted_over_custom_base():
    lifted_bool_base = LiftedPOPS(NAT)
    assert lifted_bool_base.name == "N⊥"
    assert lifted_bool_base.add(2, 3) == 5
