"""The law checkers must detect violations (refutation soundness)."""

from __future__ import annotations

from repro.semirings import BOOL, NAT, Value
from repro.semirings.base import NaturallyOrderedSemiring
from repro.semirings.properties import (
    check_absorption,
    check_commutative_monoid,
    check_distributivity,
    check_idempotent_add,
    check_minus_laws,
    check_monotonicity,
    check_partial_order,
    check_pops,
    check_strictness,
)


class BrokenMax(NaturallyOrderedSemiring):
    """(N, max, +) with deliberately wrong claims: not distributive-free
    — actually (max, +) IS a semiring; we corrupt mul to subtraction."""

    name = "broken"
    zero = 0
    one = 0

    def add(self, a: Value, b: Value) -> Value:
        return max(a, b)

    def mul(self, a: Value, b: Value) -> Value:
        return a - b  # non-commutative, breaks everything downstream

    def leq(self, a: Value, b: Value) -> bool:
        return a <= b

    def sample_values(self):
        return (0, 1, 2)


def test_commutativity_violation_detected():
    witness = check_commutative_monoid(BrokenMax(), (0, 1, 2), "mul", 0)
    assert witness is not None
    assert witness[0] in ("commutativity", "unit", "associativity")


def test_distributivity_violation_detected():
    class NonDistributive(BrokenMax):
        def mul(self, a: Value, b: Value) -> Value:
            return max(a, b) + (1 if a != b else 0)

    witness = check_distributivity(NonDistributive(), (0, 1, 2))
    assert witness is not None and witness[0] == "distributivity"


def test_absorption_violation_detected():
    class NoAbsorb(BrokenMax):
        is_semiring = True

        def mul(self, a: Value, b: Value) -> Value:
            return a + b  # (max, +): 0 is not absorbing

    witness = check_absorption(NoAbsorb(), (1, 2))
    assert witness == ("absorption", 1)


def test_partial_order_violation_detected():
    class BadOrder(BrokenMax):
        def mul(self, a: Value, b: Value) -> Value:
            return a + b

        def leq(self, a: Value, b: Value) -> bool:
            return True  # not antisymmetric

    witness = check_partial_order(BadOrder(), (0, 1))
    assert witness is not None and witness[0] == "antisymmetry"


def test_monotonicity_violation_detected():
    class NotMonotone(BrokenMax):
        def mul(self, a: Value, b: Value) -> Value:
            return max(a, b)

        def add(self, a: Value, b: Value) -> Value:
            return abs(a - b)  # wildly non-monotone

        def leq(self, a: Value, b: Value) -> bool:
            return a <= b

        @property
        def bottom(self):
            return 0

    witness = check_monotonicity(NotMonotone(), (0, 1, 2))
    assert witness is not None


def test_strictness_violation_detected():
    class FalseStrict(BrokenMax):
        plus_is_strict = True  # wrong claim: max(x, 0) = x ≠ 0
        mul_is_strict = False

        def mul(self, a: Value, b: Value) -> Value:
            return a + b

    witness = check_strictness(FalseStrict(), (1,))
    assert witness == ("plus-strict", 1)


def test_idempotency_check():
    assert check_idempotent_add(BOOL, (False, True)) is None
    assert check_idempotent_add(NAT, (0, 1, 2)) == ("idempotency", 1)


def test_minus_law_violation_detected():
    class BadMinus(type(BOOL)):
        def minus(self, b, a):
            return b  # ignores a: breaks Eq. 60

    witness = check_minus_laws(BadMinus(), (False, True))
    assert witness is not None


def test_check_pops_passes_sound_structure():
    assert check_pops(BOOL) is None
