"""The Boolean semiring ``B`` (Example 2.2) and its dioid structure."""

from __future__ import annotations


from repro.semirings import BOOL
from repro.semirings.properties import check_idempotent_add, check_minus_laws


def test_truth_tables():
    assert BOOL.add(False, False) is False
    assert BOOL.add(False, True) is True
    assert BOOL.add(True, True) is True
    assert BOOL.mul(True, True) is True
    assert BOOL.mul(True, False) is False
    assert BOOL.mul(False, False) is False


def test_units_and_flags():
    assert BOOL.zero is False
    assert BOOL.one is True
    assert BOOL.is_semiring
    assert BOOL.is_naturally_ordered
    assert BOOL.bottom is False


def test_natural_order():
    assert BOOL.leq(False, True)
    assert not BOOL.leq(True, False)
    assert BOOL.leq(True, True)
    assert BOOL.leq(False, False)


def test_dioid_laws():
    assert check_idempotent_add(BOOL, BOOL.sample_values()) is None
    assert check_minus_laws(BOOL, BOOL.sample_values()) is None


def test_minus_is_and_not():
    assert BOOL.minus(True, False) is True
    assert BOOL.minus(True, True) is False
    assert BOOL.minus(False, True) is False
    assert BOOL.minus(False, False) is False


def test_zero_stability():
    """B is 0-stable: 1 ⊕ c = 1 for every c."""
    for c in (False, True):
        assert BOOL.eq(BOOL.add(BOOL.one, c), BOOL.one)


def test_geometric_series():
    assert BOOL.geometric(False, 0) is True
    assert BOOL.geometric(True, 5) is True


def test_power():
    assert BOOL.power(True, 0) is True
    assert BOOL.power(False, 0) is True
    assert BOOL.power(False, 3) is False


def test_validation():
    assert BOOL.is_valid(True)
    assert not BOOL.is_valid(1)
    assert not BOOL.is_valid("yes")
