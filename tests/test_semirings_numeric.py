"""Numeric structures: N, N∞, R, R+ (Example 2.2)."""

from __future__ import annotations

import math

import pytest

from repro.semirings import INF, NAT, NAT_INF, REAL, REAL_PLUS
from repro.semirings.stability import (
    element_stability_index,
    is_zero_stable,
    natural_preorder_holds,
)


class TestNaturals:
    def test_arithmetic(self):
        assert NAT.add(2, 3) == 5
        assert NAT.mul(2, 3) == 6
        assert NAT.power(2, 5) == 32
        assert NAT.geometric(2, 3) == 1 + 2 + 4 + 8

    def test_order(self):
        assert NAT.leq(2, 5)
        assert not NAT.leq(5, 2)

    def test_not_stable(self):
        """c^(q) = 1 + 2 + … + 2^q grows forever (Eq. 29 over N)."""
        report = element_stability_index(NAT, 2, budget=20)
        assert not report.stable

    def test_one_is_not_zero_stable(self):
        assert not is_zero_stable(NAT)

    def test_leq_matches_natural_preorder(self):
        witnesses = list(range(10))
        for a in range(5):
            for b in range(5):
                assert NAT.leq(a, b) == natural_preorder_holds(
                    NAT, a, b, witnesses
                )

    def test_scale_nat(self):
        assert NAT.scale_nat(4, 3) == 12
        assert NAT.scale_nat(0, 3) == 0


class TestNaturalsWithInfinity:
    def test_infinity_absorbs_addition(self):
        assert NAT_INF.add(INF, 3) == INF
        assert NAT_INF.add(3, 4) == 7

    def test_zero_times_infinity_is_zero(self):
        """Keeps 0 absorbing, hence N∞ stays a semiring."""
        assert NAT_INF.mul(0, INF) == 0
        assert NAT_INF.mul(2, INF) == INF

    def test_fixpoint_unreachable(self):
        """F(x) = x + 1 has lfp ∞ but the chain never arrives (case ii)."""
        report = element_stability_index(NAT_INF, 1, budget=50)
        assert not report.stable
        assert NAT_INF.add(INF, 1) == INF  # ∞ is the fixpoint


class TestReals:
    def test_semiring_but_unordered(self):
        assert REAL.is_semiring
        assert not hasattr(REAL, "leq")

    def test_arithmetic(self):
        assert REAL.add(2.5, -1.0) == 1.5
        assert REAL.mul(2.0, -3.0) == -6.0

    def test_validation_excludes_nan_inf(self):
        assert REAL.is_valid(1.5)
        assert not REAL.is_valid(math.inf)
        assert not REAL.is_valid(True)


class TestNonNegativeReals:
    def test_order_and_units(self):
        assert REAL_PLUS.leq(0.0, 2.0)
        assert REAL_PLUS.bottom == 0.0
        assert REAL_PLUS.is_naturally_ordered

    def test_not_stable(self):
        report = element_stability_index(REAL_PLUS, 1.0, budget=20)
        assert not report.stable

    def test_company_control_arithmetic(self):
        """The share sums of Example 4.3 stay in R+."""
        total = REAL_PLUS.add_many([0.3, 0.15, 0.2])
        assert total == pytest.approx(0.65)
