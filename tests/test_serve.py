"""The fault-tolerant `datalogo serve` front end (`core/serve.py`)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import core, programs, workloads
from repro.core.incremental import Mutation, fingerprint
from repro.core.serve import (
    DatalogService,
    ServeError,
    _parse_key,
    make_server,
)
from repro.semirings import TROP


def trop_db():
    return core.Database(
        pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
    )


@pytest.fixture()
def service(tmp_path):
    svc = DatalogService(
        programs.sssp("a"), TROP, str(tmp_path), database=trop_db(),
        checkpoint_every=100, query_wall_s=5.0,
    )
    yield svc
    svc.close()


class TestQueries:
    def test_point_query_and_memoization(self, service):
        assert service.query("L", ("d",)) == 8.0
        assert service.query("L", ("d",)) == 8.0
        assert service.stats["cache_hits"] == 1
        assert service.stats["cache_misses"] == 1

    def test_mutation_invalidates_via_version_vector(self, service):
        service.query("L", ("d",))
        service.mutate([Mutation("insert", "E", ("a", "d"), 0.5)])
        assert service.query("L", ("d",)) == 0.5
        assert service.stats["cache_misses"] == 2

    def test_unrelated_relation_keeps_cache(self, tmp_path):
        # Two independent EDBs: mutating one must not evict the other's
        # cached reads (per-relation version keys, not a global epoch).
        program = core.parse_program(
            "T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y).\n"
            "U(X, Y) :- F(X, Y) | U(X, Z) * F(Z, Y).\n"
        )
        db = core.Database(
            pops=TROP,
            relations={"E": {("a", "b"): 1.0}, "F": {("p", "q"): 2.0}},
        )
        with DatalogService(
            program, TROP, str(tmp_path), database=db
        ) as svc:
            assert svc.query("T", ("a", "b")) == 1.0
            svc.mutate([Mutation("insert", "F", ("q", "r"), 1.0)])
            svc.query("T", ("a", "b"))
            assert svc.stats["cache_hits"] == 1

    def test_scan_patterns(self, service):
        full = service.scan("L")
        assert len(full) == 4
        bound = dict(service.scan("E", pattern=("a", None)))
        assert bound[("a", "b")] == 1.0
        assert ("b", "d") not in bound

    def test_scan_budget_is_structured_not_a_hang(self, service):
        with pytest.raises(ServeError) as exc:
            service.scan("L", wall_s=-1.0)
        assert exc.value.status == 408
        assert exc.value.code == "query-budget"
        assert service.stats["query_timeouts"] == 1

    def test_scan_index_never_caches_stale_data_under_new_version(
        self, service, monkeypatch
    ):
        """TOCTOU regression: a mutation landing between scan()'s
        support snapshot and the index build must not cache the
        pre-mutation index under the post-mutation version (which would
        serve stale results until the version moved again)."""
        assert dict(service.scan("L", pattern=("d",)))[("d",)] == 8.0
        real_support = DatalogService._support
        fired = []

        def racing_support(self, relation):
            support = real_support(self, relation)
            if not fired:
                fired.append(True)
                # The writer swaps the instance, then bumps versions —
                # exactly the window the version-before-support
                # discipline must tolerate.
                self.mutate([Mutation("insert", "E", ("a", "d"), 0.5)])
            return support

        monkeypatch.setattr(DatalogService, "_support", racing_support)
        service.scan("L", pattern=("d",))  # the racy scan
        monkeypatch.setattr(DatalogService, "_support", real_support)
        assert dict(service.scan("L", pattern=("d",)))[("d",)] == 0.5

    def test_unknown_relation_is_404(self, service):
        with pytest.raises(ServeError) as exc:
            service.query("Nope", ("a",))
        assert exc.value.status == 404
        assert exc.value.code == "unknown-relation"

    def test_bad_mutation_is_400_and_leaves_state(self, service):
        before = fingerprint(service.durable.instance)
        with pytest.raises(ServeError) as exc:
            service.mutate(
                [{"op": "insert", "relation": "L", "key": ["a"], "value": 1.0}]
            )
        assert exc.value.status == 400
        assert fingerprint(service.durable.instance) == before
        # nothing journaled either: a reopened instance has seq 0
        assert service.durable.seq == 0


class TestBoundQueries:
    """``GET /query?...&bound=1`` / :meth:`DatalogService.query_bound`:
    the demand-driven read path."""

    def test_warm_idb_routes_to_memoized_read(self, service):
        assert service.query_bound("L", ("d",)) == 8.0
        assert service.stats["demand_queries_warm"] == 1
        assert service.stats["demand_queries"] == 0
        # Second read hits the ordinary memo cache.
        assert service.query_bound("L", ("d",)) == 8.0
        assert service.stats["cache_hits"] == 1

    def test_cold_idb_recomputes_through_demand_path(self, service):
        expected = service.query("L", ("d",))
        # Evict the materialized IDB: the demand path must recompute
        # the answer from the EDB alone, not serve a stale memo.
        service.durable.inc.instance._data.pop("L")
        service._cache.clear()
        assert service.query_bound("L", ("d",)) == expected
        assert service.stats["demand_queries"] == 1

    def test_unknown_relation_still_404(self, service):
        with pytest.raises(ServeError) as err:
            service.query_bound("Nope", ("d",))
        assert err.value.status == 404

    def test_http_bound_param(self, service):
        server = make_server(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{port}/query?relation=L&key=d&bound=1"
            with urllib.request.urlopen(url, timeout=10) as r:
                doc = json.loads(r.read())
            assert doc["value"] == 8.0
            assert service.stats["demand_queries_warm"] == 1
        finally:
            server.shutdown()
            server.server_close()


class TestWriteSemantics:
    def test_mutate_returns_journal_seq_for_dedup(self, service):
        out = service.mutate([Mutation("insert", "E", ("a", "d"), 0.5)])
        assert out["seq"] == 1
        assert out["seq"] == service.durable.seq

    def test_unhealthy_instance_refuses_writes(self, service):
        service.durable.healthy = False
        with pytest.raises(ServeError) as exc:
            service.mutate([Mutation("insert", "E", ("a", "d"), 0.5)])
        assert exc.value.status == 503
        assert exc.value.code == "unhealthy"
        with pytest.raises(ServeError) as exc:
            service.checkpoint()
        assert exc.value.status == 503


class TestDurability:
    def test_service_state_survives_restart(self, tmp_path):
        d = str(tmp_path)
        with DatalogService(
            programs.sssp("a"), TROP, d, database=trop_db()
        ) as svc:
            svc.mutate([Mutation("insert", "E", ("a", "d"), 0.5)])
            fp = fingerprint(svc.durable.instance)
        with DatalogService(programs.sssp("a"), TROP, d) as svc2:
            assert fingerprint(svc2.durable.instance) == fp
            assert svc2.query("L", ("d",)) == 0.5

    def test_stats_snapshot_merges_all_layers(self, service):
        service.query("L", ("d",))
        service.mutate([Mutation("insert", "E", ("a", "d"), 0.5)])
        snap = service.stats_snapshot()
        for key in (
            "queries", "cache_hits", "mutation_batches",       # serve
            "journal_records", "checkpoint_writes",            # journal
            "incremental_fallbacks", "dred_deletions",         # incremental
        ):
            assert key in snap, key


class TestHttp:
    @pytest.fixture()
    def endpoint(self, service):
        server = make_server(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{port}"
        server.shutdown()
        server.server_close()

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as r:
            return r.status, json.loads(r.read())

    def _post(self, url, payload):
        req = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method="POST"
        )
        with urllib.request.urlopen(req, timeout=10) as r:
            return r.status, json.loads(r.read())

    def test_round_trip(self, endpoint):
        assert self._get(endpoint + "/health")[1]["status"] == "ok"
        status, doc = self._get(endpoint + "/query?relation=L&key=d")
        assert status == 200 and doc["value"] == 8.0
        status, doc = self._post(
            endpoint + "/mutate",
            {"mutations": [
                {"op": "insert", "relation": "E", "key": ["a", "d"],
                 "value": 0.5},
            ]},
        )
        assert status == 200 and doc["path"] == "seminaive"
        assert self._get(endpoint + "/query?relation=L&key=d")[1]["value"] == 0.5
        status, doc = self._get(
            endpoint + "/scan?relation=E&pattern=a,_&limit=9"
        )
        assert status == 200
        assert [["a", "d"], 0.5] in doc["entries"]
        status, doc = self._post(endpoint + "/checkpoint", {})
        assert status == 200 and doc["seq"] == 1
        assert self._get(endpoint + "/stats")[1]["mutation_batches"] == 1

    def test_errors_are_structured_json(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._get(endpoint + "/query?relation=Nope&key=a")
        assert exc.value.code == 404
        body = json.loads(exc.value.read())
        assert body["error"]["code"] == "unknown-relation"
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._get(endpoint + "/query?relation=L")
        assert exc.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._post(endpoint + "/mutate", {"not-mutations": []})
        assert exc.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._get(endpoint + "/no/such/route")
        assert exc.value.code == 404

    def test_health_reports_unhealthy_as_503(self, service, endpoint):
        assert self._get(endpoint + "/health")[1]["status"] == "ok"
        service.durable.healthy = False
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._get(endpoint + "/health")
        assert exc.value.code == 503
        assert json.loads(exc.value.read())["status"] == "unhealthy"

    def test_slow_mutation_is_not_reported_overloaded(self, tmp_path):
        """Writes are exempt from the pool timeout: a mutation slower
        than the read budget must return its real outcome (200 + seq),
        not a 503 for a batch that was durably applied anyway."""
        svc = DatalogService(
            programs.sssp("a"), TROP, str(tmp_path), database=trop_db(),
            query_wall_s=0.01,  # pool timeout ≈ 1.04s for reads
        )
        real_apply = svc.durable.apply

        def slow_apply(muts):
            time.sleep(1.5)
            return real_apply(muts)

        svc.durable.apply = slow_apply
        server = make_server(svc, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, doc = self._post(
                f"http://127.0.0.1:{port}/mutate",
                {"mutations": [
                    {"op": "insert", "relation": "E", "key": ["a", "d"],
                     "value": 0.5},
                ]},
            )
            assert status == 200
            assert doc["seq"] == 1
        finally:
            server.shutdown()
            server.server_close()
            svc.close()

    def test_concurrent_reads_during_writes(self, endpoint):
        """Hammer reads while a writer mutates: every response is a
        consistent fixpoint value, never an error or a torn state."""
        errors = []

        def reader():
            for _ in range(20):
                try:
                    _status, doc = self._get(
                        endpoint + "/query?relation=L&key=d"
                    )
                    assert doc["value"] in (8.0, 0.5)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        self._post(
            endpoint + "/mutate",
            {"mutations": [
                {"op": "insert", "relation": "E", "key": ["a", "d"],
                 "value": 0.5},
            ]},
        )
        for t in threads:
            t.join()
        assert errors == []


class TestKeyParsing:
    def test_comma_form(self):
        assert _parse_key("a,b") == ("a", "b")
        assert _parse_key("a, 3") == ("a", 3)
        assert _parse_key("a,_") == ("a", None)
        assert _parse_key("a,") == ("a", None)

    def test_json_form(self):
        assert _parse_key('["a", 3, null]') == ("a", 3, None)
        with pytest.raises(ServeError):
            _parse_key("[not json")
        with pytest.raises(ServeError):
            _parse_key('["unclosed"')
