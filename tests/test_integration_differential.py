"""Differential testing: all evaluation strategies must agree.

For randomly generated programs/instances across value spaces we run
(1) the sparse rule-at-a-time naïve engine, (2) the grounded-system
Kleene iteration (the definitional semantics), (3) semi-naïve where the
value space is a complete distributive dioid, and (4) LinearLFP where
the program is linear over a uniformly stable POPS — and assert they
produce identical fixpoints.  Hypothesis drives the graph generation.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import programs
from repro.core import (
    Database,
    assignment_to_instance,
    ground_program,
    linear_lfp,
    naive_fixpoint,
    seminaive_fixpoint,
)
from repro.semirings import (
    BOOL,
    LIFTED_REAL,
    TROP,
    TropicalEtaSemiring,
    TropicalPSemiring,
)

NODES = ["a", "b", "c", "d", "e"]

edge_sets = st.sets(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=10,
)
weights = st.integers(min_value=1, max_value=9).map(float)


def weighted(draw_edges, w):
    return {e: w for e in draw_edges}


@settings(max_examples=25, deadline=None)
@given(edge_sets, weights)
def test_trop_sssp_all_methods_agree(edges, w):
    db = Database(pops=TROP, relations={"E": {e: w for e in edges}})
    prog = programs.sssp("a")
    naive = naive_fixpoint(prog, db)
    system = ground_program(prog, db)
    grounded = assignment_to_instance(system, system.kleene().value)
    semi = seminaive_fixpoint(prog, db)
    linear = assignment_to_instance(system, linear_lfp(system, 0))
    assert grounded.equals(naive.instance)
    assert semi.instance.equals(naive.instance)
    assert linear.equals(naive.instance)


@settings(max_examples=20, deadline=None)
@given(edge_sets)
def test_bool_tc_all_methods_agree(edges):
    db = Database(pops=BOOL, relations={"E": {e: True for e in edges}})
    prog = programs.transitive_closure()
    naive = naive_fixpoint(prog, db)
    system = ground_program(prog, db)
    grounded = assignment_to_instance(system, system.kleene().value)
    semi = seminaive_fixpoint(prog, db)
    linear = assignment_to_instance(system, linear_lfp(system, 0))
    assert grounded.equals(naive.instance)
    assert semi.instance.equals(naive.instance)
    assert linear.equals(naive.instance)


@settings(max_examples=20, deadline=None)
@given(edge_sets)
def test_bool_quadratic_tc_agrees(edges):
    db = Database(pops=BOOL, relations={"E": {e: True for e in edges}})
    prog = programs.quadratic_transitive_closure()
    naive = naive_fixpoint(prog, db)
    system = ground_program(prog, db)
    grounded = assignment_to_instance(system, system.kleene().value)
    semi = seminaive_fixpoint(prog, db)
    assert grounded.equals(naive.instance)
    assert semi.instance.equals(naive.instance)


@settings(max_examples=20, deadline=None)
@given(edge_sets, weights)
def test_tropp_sssp_naive_vs_grounded(edges, w):
    tp = TropicalPSemiring(1)
    db = Database(
        pops=tp,
        relations={"E": {e: tp.singleton(w) for e in edges}},
    )
    prog = programs.sssp("a", source_value=tp.one, missing_value=tp.zero)
    naive = naive_fixpoint(prog, db)
    system = ground_program(prog, db)
    grounded = assignment_to_instance(system, system.kleene().value)
    linear = assignment_to_instance(system, linear_lfp(system, 1))
    assert grounded.equals(naive.instance)
    assert linear.equals(naive.instance)


@settings(max_examples=20, deadline=None)
@given(
    st.sets(
        st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=8,
    ),
    st.dictionaries(
        st.sampled_from(NODES),
        st.integers(min_value=1, max_value=9).map(float),
        min_size=1,
    ),
)
def test_lifted_bom_naive_vs_grounded(edges, costs):
    db = Database(
        pops=LIFTED_REAL,
        relations={"C": {(k,): v for k, v in costs.items()}},
        bool_relations={"E": set(edges)},
    )
    prog = programs.bill_of_material()
    naive = naive_fixpoint(prog, db)
    system = ground_program(prog, db)
    grounded = assignment_to_instance(system, system.kleene().value)
    assert grounded.equals(naive.instance)


@settings(max_examples=15, deadline=None)
@given(edge_sets, weights)
def test_trop_eta_sssp_naive_vs_grounded(edges, w):
    te = TropicalEtaSemiring(2.0)
    db = Database(
        pops=te,
        relations={"E": {e: te.singleton(w) for e in edges}},
    )
    prog = programs.sssp("a", source_value=te.one, missing_value=te.zero)
    naive = naive_fixpoint(prog, db)
    system = ground_program(prog, db)
    grounded = assignment_to_instance(system, system.kleene().value)
    assert grounded.equals(naive.instance)


@settings(max_examples=15, deadline=None)
@given(edge_sets, weights)
def test_apsp_matches_floyd_warshall_kleene(edges, w):
    """The matrix-closure solver agrees with the datalog° engine."""
    from repro.semirings import KleeneClosure

    db = Database(pops=TROP, relations={"E": {e: w for e in edges}})
    result = naive_fixpoint(programs.apsp(), db)
    nodes = sorted({n for e in edges for n in e})
    if not nodes:
        return
    index = {n: i for i, n in enumerate(nodes)}
    a = [[TROP.zero] * len(nodes) for _ in nodes]
    for (x, y) in edges:
        a[index[x]][index[y]] = w
    closure = KleeneClosure(structure=TROP, stability_p=0).closure(a)
    for x in nodes:
        for y in nodes:
            expected = closure[index[x]][index[y]]
            if x == y:
                # closure includes the trivial empty path; the program
                # requires ≥ 1 edge.
                continue
            assert result.instance.get("T", (x, y)) == expected
