"""The applications layer (`repro.apps`) and the CLI (`repro.cli`)."""

from __future__ import annotations

import json

import pytest

from repro import apps, workloads
from repro.cli import POPS_FACTORIES, load_database, main, resolve_pops
from repro.semirings import INF, TropicalPSemiring


class TestApps:
    def test_reachability(self):
        edges = {("a", "b"), ("b", "c"), ("d", "e")}
        assert apps.reachability(edges, "a") == {"a", "b", "c"}

    def test_transitive_closure(self):
        tc = apps.transitive_closure({("a", "b"), ("b", "c")})
        assert tc == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_shortest_paths_matches_dijkstra(self):
        edges = workloads.random_weighted_digraph(12, 0.2, seed=9)
        out = apps.shortest_paths(edges, 0)
        oracle = workloads.dijkstra(edges, 0)
        assert out == pytest.approx(oracle)

    def test_all_pairs(self):
        out = apps.all_pairs_shortest_paths(workloads.fig_2a_graph())
        assert out[("a", "d")] == 8.0

    def test_k_shortest(self):
        out = apps.k_shortest_paths(workloads.fig_2a_graph(), "a", k=2)
        assert out["d"] == (8.0, 9.0)
        with pytest.raises(ValueError):
            apps.k_shortest_paths({}, "a", k=0)

    def test_near_optimal(self):
        out = apps.near_optimal_paths(workloads.fig_2a_graph(), "a", eta=1.5)
        assert out["c"] == (4.0, 5.0)

    def test_widest_paths(self):
        edges = {("s", "a"): 4.0, ("a", "t"): 3.0, ("s", "t"): 2.0}
        assert apps.widest_paths(edges)[("s", "t")] == 3.0

    def test_most_reliable_paths(self):
        edges = {("s", "a"): 0.9, ("a", "t"): 0.9, ("s", "t"): 0.5}
        out = apps.most_reliable_paths(edges)
        assert out[("s", "t")] == pytest.approx(0.81)
        with pytest.raises(ValueError):
            apps.most_reliable_paths({("a", "b"): 1.5})

    def test_bom_totals(self):
        edges, costs = workloads.fig_2b_bom()
        out = apps.bom_totals(edges, costs)
        assert out["a"] is None and out["b"] is None
        assert out["c"] == 11.0 and out["d"] == 10.0

    def test_win_positions(self):
        out = apps.win_positions(workloads.fig_4_edges())
        assert out == {
            "a": "draw", "b": "draw",
            "c": "win", "e": "win",
            "d": "lose", "f": "lose",
        }

    def test_methods_agree(self):
        edges = workloads.random_weighted_digraph(8, 0.3, seed=2)
        naive = apps.all_pairs_shortest_paths(edges, method="naive")
        semi = apps.all_pairs_shortest_paths(edges, method="seminaive")
        assert naive == semi


class TestCli:
    @pytest.fixture()
    def tc_files(self, tmp_path):
        program = tmp_path / "tc.dl"
        program.write_text("T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y).\n")
        edb = tmp_path / "edb.json"
        edb.write_text(json.dumps({
            "relations": {
                "E": [[["a", "b"], 1.0], [["b", "c"], 3.0]],
            }
        }))
        return str(program), str(edb)

    def test_resolve_pops(self):
        assert resolve_pops("trop").name == "Trop+"
        tp = resolve_pops("tropp:2")
        assert isinstance(tp, TropicalPSemiring) and tp.p == 2
        with pytest.raises(SystemExit):
            resolve_pops("nonsense")

    def test_every_factory_resolves(self):
        for name in POPS_FACTORIES:
            spec = name + (":1" if name in ("tropp", "tropeta") else "")
            assert resolve_pops(spec) is not None

    def test_load_database_lifts_tropp_values(self, tc_files):
        _, edb = tc_files
        db = load_database(edb, resolve_pops("tropp:1"))
        assert db.value("E", ("a", "b")) == (1.0, INF)

    def test_run_command(self, tc_files, capsys):
        program, edb = tc_files
        code = main(["run", program, "--pops", "trop", "--edb", edb])
        assert code == 0
        out = capsys.readouterr().out
        assert "T(a, c) = 4.0" in out
        assert "converged" in out

    def test_run_seminaive(self, tc_files, capsys):
        program, edb = tc_files
        code = main([
            "run", program, "--pops", "trop", "--edb", edb,
            "--method", "seminaive",
        ])
        assert code == 0
        assert "T(a, c) = 4.0" in capsys.readouterr().out

    def test_run_query_demands_point(self, tc_files, capsys):
        program, edb = tc_files
        code = main([
            "run", program, "--pops", "trop", "--edb", edb,
            "--method", "seminaive", "--query", "T(a,?)", "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "T(a, c) = 4.0" in out
        # Only the demanded source materializes…
        assert "T(b, c)" not in out
        # …through the demand path, not a counted fallback.
        assert "# stat demand_fallbacks = 0" in out

    def test_run_query_string_forms(self, tc_files, capsys):
        program, edb = tc_files
        code = main([
            "run", program, "--pops", "trop", "--edb", edb,
            "--query", "T(a, _)",
        ])
        assert code == 0
        assert "T(a, b) = 1.0" in capsys.readouterr().out

    def test_run_query_malformed_rejected(self, tc_files):
        program, edb = tc_files
        with pytest.raises(SystemExit, match="error:"):
            main([
                "run", program, "--pops", "trop", "--edb", edb,
                "--query", "T(a",
            ])
        with pytest.raises(SystemExit, match="not an IDB"):
            main([
                "run", program, "--pops", "trop", "--edb", edb,
                "--query", "Nope(a,?)",
            ])

    @pytest.mark.parametrize("engine", ["compiled", "codegen", "interpreted"])
    def test_run_engine_flag(self, tc_files, capsys, engine):
        program, edb = tc_files
        code = main([
            "run", program, "--pops", "trop", "--edb", edb,
            "--engine", engine,
        ])
        assert code == 0
        assert "T(a, c) = 4.0" in capsys.readouterr().out

    @pytest.mark.parametrize("schedule", ["scc", "parallel", "monolithic"])
    def test_run_schedule_flag(self, tc_files, capsys, schedule):
        program, edb = tc_files
        code = main([
            "run", program, "--pops", "trop", "--edb", edb,
            "--schedule", schedule,
        ])
        assert code == 0
        assert "T(a, c) = 4.0" in capsys.readouterr().out

    @pytest.mark.parametrize("plan", ["indexed", "indexed-greedy", "naive"])
    def test_run_plan_flag(self, tc_files, capsys, plan):
        program, edb = tc_files
        code = main([
            "run", program, "--pops", "trop", "--edb", edb,
            "--plan", plan, "--method", "seminaive",
        ])
        assert code == 0
        assert "T(a, c) = 4.0" in capsys.readouterr().out

    def test_run_engine_plan_conflict_rejected(self, tc_files):
        # engine=codegen needs an indexed plan; the engine layer's
        # validation surfaces as a clean CLI error, not a traceback.
        program, edb = tc_files
        with pytest.raises(SystemExit, match="indexed plan"):
            main([
                "run", program, "--pops", "trop", "--edb", edb,
                "--plan", "naive", "--engine", "codegen",
            ])

    def test_run_rejects_unknown_engine(self, tc_files):
        program, edb = tc_files
        with pytest.raises(SystemExit):
            main([
                "run", program, "--pops", "trop", "--edb", edb,
                "--engine", "mystery",
            ])

    def test_classify_command(self, tc_files, capsys):
        program, edb = tc_files
        code = main(["classify", program, "--pops", "trop", "--edb", edb])
        assert code == 0
        out = capsys.readouterr().out
        assert "taxonomy case   : (v)" in out
        assert "linear program  : True" in out

    def test_pops_list(self, capsys):
        assert main(["pops-list"]) == 0
        out = capsys.readouterr().out
        assert "trop" in out and "bottleneck" in out

    def test_bool_run(self, tmp_path, capsys):
        program = tmp_path / "reach.dl"
        program.write_text("L(X) :- [X = a] | L(Z) * E(Z, X).\n")
        edb = tmp_path / "edb.json"
        edb.write_text(json.dumps({
            "relations": {
                "E": [[["a", "b"], True], [["b", "c"], True]],
            }
        }))
        code = main(["run", str(program), "--pops", "bool", "--edb", str(edb)])
        assert code == 0
        out = capsys.readouterr().out
        assert "L(c) = True" in out

    def test_module_entrypoint(self, tc_files):
        import subprocess
        import sys

        program, edb = tc_files
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", program,
             "--pops", "trop", "--edb", edb],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "T(a, c) = 4.0" in proc.stdout


class TestWorkersValidation:
    """Satellite: `engine_workers`/`--workers` fail loud at every boundary
    with the same message naming the seminaive-only constraint."""

    MSG = "engine_workers > 1 shards the semi-naïve delta"

    @pytest.fixture()
    def tc_files(self, tmp_path):
        program = tmp_path / "tc.dl"
        program.write_text("T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y).\n")
        edb = tmp_path / "edb.json"
        edb.write_text(json.dumps({
            "relations": {
                "E": [[["a", "b"], 1.0], [["b", "c"], 3.0]],
            }
        }))
        return str(program), str(edb)

    def test_solve_rejects_naive_workers(self):
        from repro import core, workloads
        from repro.semirings import TROP

        db = core.Database(
            pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
        )
        program = core.parse_program(
            "T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y).\n"
        )
        with pytest.raises(ValueError, match="use method='seminaive'"):
            core.solve(program, db, method="naive", engine_workers=2)

    def test_scheduled_fixpoint_rejects_naive_workers(self):
        from repro import core, workloads
        from repro.core.scheduler import scheduled_fixpoint
        from repro.semirings import TROP

        db = core.Database(
            pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
        )
        program = core.parse_program(
            "T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y).\n"
        )
        with pytest.raises(ValueError, match="use method='seminaive'"):
            scheduled_fixpoint(program, db, method="naive", workers=2)

    def test_cli_prints_same_message(self, tc_files):
        program, edb = tc_files
        with pytest.raises(SystemExit, match="use method='seminaive'"):
            main(["run", program, "--pops", "trop", "--edb", edb,
                  "--method", "naive", "--workers", "2"])


class TestValidListsDeduped:
    """Satellite: engine/schedule choices come from one module each."""

    def test_valid_schedules_single_source(self):
        from repro.core import VALID_SCHEDULES
        from repro.core.scheduler import (
            VALID_SCHEDULES as scheduler_schedules,
        )

        assert VALID_SCHEDULES is scheduler_schedules
        assert VALID_SCHEDULES == ("auto", "scc", "parallel", "monolithic")

    def test_solve_names_valid_schedules(self):
        from repro import core, workloads
        from repro.semirings import TROP

        db = core.Database(
            pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
        )
        program = core.parse_program(
            "T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y).\n"
        )
        with pytest.raises(ValueError, match="monolithic"):
            core.solve(program, db, schedule="bogus")

    def test_cli_choices_track_the_lists(self):
        from repro.cli import build_parser
        from repro.core import VALID_ENGINES, VALID_SCHEDULES

        parser = build_parser()
        run_parser = next(
            a for a in parser._subparsers._group_actions[0].choices.items()
            if a[0] == "run"
        )[1]
        by_dest = {a.dest: a for a in run_parser._actions}
        assert tuple(by_dest["schedule"].choices) == VALID_SCHEDULES
        assert tuple(by_dest["engine"].choices) == tuple(VALID_ENGINES)


class TestServeCli:
    @pytest.fixture()
    def tc_files(self, tmp_path):
        program = tmp_path / "tc.dl"
        program.write_text("T(X, Y) :- E(X, Y) | T(X, Z) * E(Z, Y).\n")
        edb = tmp_path / "edb.json"
        edb.write_text(json.dumps({
            "relations": {
                "E": [[["a", "b"], 1.0], [["b", "c"], 3.0]],
            }
        }))
        return str(program), str(edb)

    def test_serve_requires_edb_or_checkpoint(self, tc_files, tmp_path):
        program, _edb = tc_files
        with pytest.raises(SystemExit, match="no --edb"):
            main(["serve", program, "--pops", "trop",
                  "--data-dir", str(tmp_path / "empty")])

    def test_serve_round_trip_over_http(self, tc_files, tmp_path):
        """Boot the real subcommand in a thread, hit it over HTTP."""
        import threading
        import urllib.request

        from repro.cli import load_database, resolve_pops
        from repro.core import parse_program
        from repro.core.serve import DatalogService, make_server

        program_path, edb_path = tc_files
        pops = resolve_pops("trop")
        with open(program_path) as f:
            program = parse_program(f.read())
        service = DatalogService(
            program, pops, str(tmp_path / "data"),
            database=load_database(edb_path, pops),
        )
        server = make_server(service, port=0)
        port = server.server_address[1]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/query?relation=T&key=a,c",
                timeout=10,
            ) as r:
                assert json.loads(r.read())["value"] == 4.0
        finally:
            server.shutdown()
            server.server_close()
            service.close()
