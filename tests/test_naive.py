"""Naïve evaluation (Algorithm 1): paper traces and oracle cross-checks."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import core, programs, workloads
from repro.core import Database, NaiveEvaluator, naive_fixpoint
from repro.fixpoint import DivergenceError
from repro.semirings import (
    BOOL,
    BOTTOM,
    INF,
    LIFTED_REAL,
    NAT,
    TROP,
    TropicalEtaSemiring,
    TropicalPSemiring,
)


class TestExample41Table:
    """The SSSP iteration table of Example 4.1 over Trop+ (Fig. 2a)."""

    def test_exact_trace(self, sssp_program, fig2a_trop_db):
        result = naive_fixpoint(
            sssp_program, fig2a_trop_db, capture_trace=True
        )
        rows = [
            [snap.get("L", (n,)) for n in "abcd"] for snap in result.trace
        ]
        assert rows[0] == [INF, INF, INF, INF]
        assert rows[1] == [0.0, INF, INF, INF]
        assert rows[2] == [0.0, 1.0, 5.0, INF]
        assert rows[3] == [0.0, 1.0, 4.0, 9.0]
        assert rows[4] == [0.0, 1.0, 4.0, 8.0]
        assert rows[5] == [0.0, 1.0, 4.0, 8.0]
        # The paper counts 5 naïve applications (L⁽⁵⁾ = L⁽⁴⁾).
        assert result.steps == 4
        assert len(result.trace) == 6

    def test_boolean_reading_is_reachability(self, sssp_program):
        edges = {k: True for k in workloads.fig_2a_graph()}
        db = Database(pops=BOOL, relations={"E": edges})
        result = naive_fixpoint(sssp_program, db)
        reach = workloads.reachable_nodes(set(workloads.fig_2a_graph()), "a")
        for node in "abcd":
            assert result.instance.get("L", (node,)) == (node in reach)

    def test_tropp1_reading_is_two_shortest(self, sssp_program):
        t1 = TropicalPSemiring(1)
        edges = {
            k: t1.singleton(w) for k, w in workloads.fig_2a_graph().items()
        }
        db = Database(pops=t1, relations={"E": edges})
        prog = programs.sssp("a")
        result = naive_fixpoint(prog, db)
        assert result.instance.get("L", ("a",)) == (0.0, 3.0)
        assert result.instance.get("L", ("b",)) == (1.0, 4.0)
        assert result.instance.get("L", ("c",)) == (4.0, 5.0)
        assert result.instance.get("L", ("d",)) == (8.0, 9.0)

    def test_trop_eta_reading_is_near_optimal_lengths(self):
        te = TropicalEtaSemiring(1.5)
        edges = {
            k: te.singleton(w) for k, w in workloads.fig_2a_graph().items()
        }
        db = Database(pops=te, relations={"E": edges})
        result = naive_fixpoint(programs.sssp("a"), db)
        # Paths to c: 4 (a-b-c) and 5 (a-c): both within η = 1.5.
        assert result.instance.get("L", ("c",)) == (4.0, 5.0)
        # Paths to d: 8 and 9.
        assert result.instance.get("L", ("d",)) == (8.0, 9.0)


class TestExample42Table:
    def test_bom_trace(self, bom_db):
        result = naive_fixpoint(
            programs.bill_of_material(), bom_db, capture_trace=True
        )
        rows = [
            [snap.get("T", (n,)) for n in "abcd"] for snap in result.trace
        ]
        assert rows[0] == [BOTTOM, BOTTOM, BOTTOM, BOTTOM]
        assert rows[1] == [BOTTOM, BOTTOM, BOTTOM, 10.0]
        assert rows[2] == [BOTTOM, BOTTOM, 11.0, 10.0]
        assert rows[3] == [BOTTOM, BOTTOM, 11.0, 10.0]
        assert result.steps == 2  # T⁽³⁾ = T⁽²⁾, the paper's "3 steps"

    def test_bom_diverges_over_naturals(self):
        edges, costs = workloads.fig_2b_bom()
        db = Database(
            pops=NAT,
            relations={"C": {(k,): int(v) for k, v in costs.items()}},
            bool_relations={"E": set(edges)},
        )
        with pytest.raises(DivergenceError):
            naive_fixpoint(programs.bill_of_material(), db, max_iterations=50)

    def test_bom_on_tree_over_naturals_converges(self):
        edges, costs = workloads.part_hierarchy(depth=3, fanout=2, seed=1)
        db = Database(
            pops=NAT,
            relations={"C": {(k,): int(v * 100) for k, v in costs.items()}},
            bool_relations={"E": set(edges)},
        )
        result = naive_fixpoint(programs.bill_of_material(), db)
        # Root total = sum of all scaled costs (each part counted once
        # per occurrence; the hierarchy is a tree so once overall).
        expected = sum(int(v * 100) for v in costs.values())
        assert result.instance.get("T", (0,)) == expected

    def test_bom_cycles_poison_ancestors_over_lifted(self):
        edges, costs = workloads.part_hierarchy(
            depth=3, fanout=2, seed=3, cyclic_back_edges=1
        )
        db = Database(
            pops=LIFTED_REAL,
            relations={"C": {(k,): v for k, v in costs.items()}},
            bool_relations={"E": set(edges)},
        )
        result = naive_fixpoint(programs.bill_of_material(), db)
        values = [
            result.instance.get("T", (n,)) for n in costs
        ]
        assert any(v is BOTTOM for v in values)   # the cycle
        assert any(v is not BOTTOM for v in values)  # leaves still priced


class TestOracles:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_apsp_matches_networkx(self, seed):
        edges = workloads.random_weighted_digraph(8, 0.3, seed=seed)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        result = naive_fixpoint(programs.apsp(), db)
        graph = nx.DiGraph()
        for (a, b), w in edges.items():
            graph.add_edge(a, b, weight=w)
        lengths = dict(nx.all_pairs_dijkstra_path_length(graph))
        for a in graph.nodes:
            for b in graph.nodes:
                expected = lengths.get(a, {}).get(b, INF)
                if a == b and expected == 0:
                    # The datalog° program computes paths of ≥ 1 edge;
                    # a zero self-distance only appears via a cycle.
                    continue
                assert result.instance.get("T", (a, b)) == pytest.approx(
                    expected
                )

    @pytest.mark.parametrize("seed", [3, 4])
    def test_sssp_matches_dijkstra(self, seed):
        edges = workloads.random_weighted_digraph(10, 0.25, seed=seed)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        result = naive_fixpoint(programs.sssp(0), db)
        oracle = workloads.dijkstra(edges, 0)
        nodes = {n for pair in edges for n in pair}
        for node in nodes:
            assert result.instance.get("L", (node,)) == pytest.approx(
                oracle.get(node, INF)
            )

    @pytest.mark.parametrize("seed", [0, 5])
    def test_tc_matches_networkx(self, seed):
        dag = workloads.random_dag(8, 0.3, seed=seed)
        db = Database(
            pops=BOOL, relations={"E": {e: True for e in dag}}
        )
        result = naive_fixpoint(programs.transitive_closure(), db)
        graph = nx.DiGraph(list(dag))
        closure = nx.transitive_closure(graph)
        for a in graph.nodes:
            for b in graph.nodes:
                assert result.instance.get("T", (a, b)) == closure.has_edge(
                    a, b
                )


class TestConvergenceGuarantees:
    def test_zero_stable_converges_within_n(self, fig2a_trop_db):
        """Corollary 5.19: ≤ N steps over a 0-stable POPS (N = 4 here)."""
        result = naive_fixpoint(programs.sssp("a"), fig2a_trop_db)
        assert result.steps <= 4

    def test_geometric_program_stability(self):
        """x :- 1 ⊕ c·x converges over Trop+ and diverges over N (Eq. 29)."""
        prog = programs.one_rule_program(TROP.one)
        db = Database(pops=TROP, relations={"Cval": {("u",): 2.0}})
        result = naive_fixpoint(prog, db)
        assert result.instance.get("X", ("u",)) == 0.0

        prog_n = programs.one_rule_program(NAT.one)
        db_n = Database(pops=NAT, relations={"Cval": {("u",): 2}})
        with pytest.raises(DivergenceError):
            naive_fixpoint(prog_n, db_n, max_iterations=30)

    def test_geometric_program_over_tropp_takes_p_steps(self):
        """Over Trop+_p the iterates are c^(q); index p is reached for
        the 1-element (Proposition 5.3 tightness)."""
        p = 2
        tp = TropicalPSemiring(p)
        prog = programs.one_rule_program(tp.one)
        db = Database(pops=tp, relations={"Cval": {("u",): tp.one}})
        result = naive_fixpoint(prog, db, capture_trace=True)
        # q-th iterate is 1^(q-1); stabilizes at q = p+1 → steps == p+1.
        assert result.steps == p + 1


class TestEvaluatorMechanics:
    def test_stats_counters(self, sssp_program, fig2a_trop_db):
        evaluator = NaiveEvaluator(sssp_program, fig2a_trop_db)
        result = evaluator.run()
        assert result.stats["iterations"] == result.steps + 1
        assert result.stats["products"] > 0
        assert result.stats["valuations"] == result.stats["products"]

    def test_total_heads_flag_default(self, bom_db, fig2a_trop_db):
        assert NaiveEvaluator(programs.bill_of_material(), bom_db).total_heads
        assert not NaiveEvaluator(programs.sssp("a"), fig2a_trop_db).total_heads

    def test_interpreted_head_key_function(self):
        prog = programs.shipping_dates()
        db = Database(
            pops=NAT, relations={"Order": {("c1", 5): 1, ("c2", 9): 1}}
        )
        result = naive_fixpoint(prog, db)
        assert result.instance.get("Shipping", ("c1", 6)) == 1
        assert result.instance.get("Shipping", ("c2", 10)) == 1

    def test_prefix_sum_case_statement(self):
        length = 6
        prog = programs.prefix_sum(length=length)
        values = [3, 1, 4, 1, 5, 9]
        db = Database(
            pops=NAT,
            relations={"V": {(i,): v for i, v in enumerate(values)}},
            bool_relations={"Idx": {(i,) for i in range(length)}},
        )
        result = naive_fixpoint(prog, db)
        acc = 0
        for i, v in enumerate(values):
            acc += v
            assert result.instance.get("W", (i,)) == acc
