"""Every example script must run end-to-end (their asserts built in)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    out = capsys.readouterr().out
    assert out.strip()  # examples narrate their results


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "shortest_paths",
        "bill_of_material",
        "win_move",
        "company_control",
        "convergence_lab",
        "program_analysis",
    } <= names
