"""Property-based tests (hypothesis) on the core value spaces.

Random-element versions of the axiom batteries: semiring laws, order
laws, operator monotonicity, the ⊖ laws of Lemma 6.3, and the
closed-form natural orders (``Trop+_p``'s bag-containment
characterization cross-checked against witness search).
"""

from __future__ import annotations


from hypothesis import given, settings, strategies as st

from repro.semirings import (
    BOOL,
    INF,
    THREE,
    TROP,
    BOTTOM,
    LIFTED_REAL,
    TropicalEtaSemiring,
    TropicalPSemiring,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

finite_costs = st.integers(min_value=0, max_value=20).map(float)
trop_values = st.one_of(st.just(INF), finite_costs)

TP1 = TropicalPSemiring(1)
TP2 = TropicalPSemiring(2)
TE = TropicalEtaSemiring(3.0)


def tropp_values(tp):
    return st.lists(trop_values, min_size=0, max_size=4).map(tp.from_values)


def trope_values():
    return st.lists(trop_values, min_size=0, max_size=4).map(TE.from_values)


three_values = st.sampled_from([BOTTOM, False, True])
lifted_values = st.one_of(
    st.just(BOTTOM),
    st.integers(min_value=-5, max_value=5).map(float),
)


# ---------------------------------------------------------------------------
# generic law templates
# ---------------------------------------------------------------------------


def _check_semiring_laws(structure, a, b, c):
    assert structure.eq(structure.add(a, b), structure.add(b, a))
    assert structure.eq(structure.mul(a, b), structure.mul(b, a))
    assert structure.eq(
        structure.add(structure.add(a, b), c),
        structure.add(a, structure.add(b, c)),
    )
    assert structure.eq(
        structure.mul(structure.mul(a, b), c),
        structure.mul(a, structure.mul(b, c)),
    )
    assert structure.eq(structure.add(a, structure.zero), a)
    assert structure.eq(structure.mul(a, structure.one), a)
    assert structure.eq(
        structure.mul(a, structure.add(b, c)),
        structure.add(structure.mul(a, b), structure.mul(a, c)),
    )
    if structure.is_semiring:
        assert structure.eq(
            structure.mul(a, structure.zero), structure.zero
        )


def _check_order_laws(pops, a, b, c):
    assert pops.leq(a, a)
    assert pops.leq(pops.bottom, a)
    if pops.leq(a, b) and pops.leq(b, a):
        assert pops.eq(a, b)
    if pops.leq(a, b) and pops.leq(b, c):
        assert pops.leq(a, c)
    if pops.leq(a, b):
        assert pops.leq(pops.add(a, c), pops.add(b, c))
        assert pops.leq(pops.mul(a, c), pops.mul(b, c))


# ---------------------------------------------------------------------------
# Trop+
# ---------------------------------------------------------------------------


@given(trop_values, trop_values, trop_values)
def test_trop_laws(a, b, c):
    _check_semiring_laws(TROP, a, b, c)
    _check_order_laws(TROP, a, b, c)


@given(trop_values, trop_values, trop_values)
def test_trop_minus_laws(a, b, c):
    if TROP.leq(a, b):
        assert TROP.eq(TROP.add(a, TROP.minus(b, a)), b)
    lhs = TROP.minus(TROP.add(a, b), TROP.add(a, c))
    rhs = TROP.minus(b, TROP.add(a, c))
    assert TROP.eq(lhs, rhs)


@given(trop_values)
def test_trop_zero_stability_elementwise(c):
    assert TROP.eq(TROP.geometric(c, 0), TROP.geometric(c, 1))


# ---------------------------------------------------------------------------
# Trop+_p
# ---------------------------------------------------------------------------


@settings(max_examples=60)
@given(tropp_values(TP1), tropp_values(TP1), tropp_values(TP1))
def test_tropp1_laws(a, b, c):
    _check_semiring_laws(TP1, a, b, c)
    _check_order_laws(TP1, a, b, c)


@settings(max_examples=40)
@given(tropp_values(TP2), tropp_values(TP2), tropp_values(TP2))
def test_tropp2_laws(a, b, c):
    _check_semiring_laws(TP2, a, b, c)
    _check_order_laws(TP2, a, b, c)


@settings(max_examples=60)
@given(tropp_values(TP1), tropp_values(TP1))
def test_tropp_identity_15(a, b):
    """Computing with bags then one final min_p equals eager min_p."""
    merged = TP1.from_values([x for x in a + b if x != INF])
    assert TP1.eq(TP1.add(a, b), merged)


@settings(max_examples=60)
@given(tropp_values(TP1))
def test_tropp_p_stability(c):
    assert TP1.eq(TP1.geometric(c, 1), TP1.geometric(c, 2))
    assert TP1.eq(TP1.geometric(c, 1), TP1.geometric(c, 5))


@settings(max_examples=40)
@given(
    st.lists(st.integers(min_value=0, max_value=4).map(float), max_size=2),
    st.lists(st.integers(min_value=0, max_value=4).map(float), max_size=2),
)
def test_tropp_leq_matches_witness_search(xs, ys):
    """Closed-form ⪯ agrees with ∃z search over a small universe."""
    x = TP1.from_values(xs)
    y = TP1.from_values(ys)
    universe = [
        TP1.from_values(list(pair))
        for pair in [
            (),
            (0.0,),
            (1.0,),
            (2.0,),
            (3.0,),
            (4.0,),
            (0.0, 0.0),
            (0.0, 1.0),
            (1.0, 1.0),
            (1.0, 2.0),
            (2.0, 3.0),
            (3.0, 4.0),
            (4.0, 4.0),
            (0.0, 4.0),
            (1.0, 4.0),
            (2.0, 2.0),
            (3.0, 3.0),
            (0.0, 2.0),
            (0.0, 3.0),
            (1.0, 3.0),
            (2.0, 4.0),
        ]
    ]
    witnessed = any(TP1.eq(TP1.add(x, z), y) for z in universe)
    if witnessed:
        assert TP1.leq(x, y)
    if not TP1.leq(x, y):
        assert not witnessed


# ---------------------------------------------------------------------------
# Trop+_≤η
# ---------------------------------------------------------------------------


@settings(max_examples=60)
@given(trope_values(), trope_values(), trope_values())
def test_trop_eta_laws(a, b, c):
    _check_semiring_laws(TE, a, b, c)
    _check_order_laws(TE, a, b, c)


@settings(max_examples=60)
@given(trope_values(), trope_values())
def test_trop_eta_identity_16(a, b):
    merged = TE.from_values([x for x in a + b if x != INF] or [INF])
    assert TE.eq(TE.add(a, b), merged)


@settings(max_examples=60)
@given(trope_values())
def test_trop_eta_add_idempotent(a):
    assert TE.eq(TE.add(a, a), a)


# ---------------------------------------------------------------------------
# THREE and lifted reals
# ---------------------------------------------------------------------------


@given(three_values, three_values, three_values)
def test_three_laws(a, b, c):
    _check_semiring_laws(THREE, a, b, c)
    _check_order_laws(THREE, a, b, c)


@given(lifted_values, lifted_values, lifted_values)
def test_lifted_real_laws(a, b, c):
    _check_semiring_laws(LIFTED_REAL, a, b, c)
    _check_order_laws(LIFTED_REAL, a, b, c)


@given(lifted_values)
def test_lifted_real_strictness(a):
    assert LIFTED_REAL.add(a, BOTTOM) is BOTTOM
    assert LIFTED_REAL.mul(a, BOTTOM) is BOTTOM


# ---------------------------------------------------------------------------
# Booleans: exhaustive by hypothesis anyway
# ---------------------------------------------------------------------------


@given(st.booleans(), st.booleans(), st.booleans())
def test_bool_laws(a, b, c):
    _check_semiring_laws(BOOL, a, b, c)
    _check_order_laws(BOOL, a, b, c)
    if BOOL.leq(a, b):
        assert BOOL.eq(BOOL.add(a, BOOL.minus(b, a)), b)
