"""Convergence classification and bounds (Theorem 1.2, Section 4.2)."""

from __future__ import annotations

import pytest

from repro import programs, workloads
from repro.analysis import classify, count_ground_atoms, tropp_linear_bound
from repro.core import Database, naive_fixpoint
from repro.semirings import NAT, TROP, TropicalEtaSemiring, TropicalPSemiring


class TestCounting:
    def test_count_ground_atoms(self, sssp_program, fig2a_trop_db):
        # Unary IDB over D₀ = {a, b, c, d}.
        assert count_ground_atoms(sssp_program, fig2a_trop_db) == 4

    def test_binary_idb_squares(self, tc_program):
        db = Database(pops=TROP, relations={"E": {("a", "b"): 1.0}})
        assert count_ground_atoms(tc_program, db) == 4


class TestClassification:
    def test_trop_is_case_v(self, sssp_program, fig2a_trop_db):
        report = classify(sssp_program, fig2a_trop_db)
        assert report.taxonomy_case == "(v)"
        assert report.stability_p == 0
        assert report.bound == 4

    def test_lifted_reals_case_v(self, bom_db):
        report = classify(programs.bill_of_material(), bom_db)
        assert report.taxonomy_case == "(v)"
        assert report.bound == report.n_ground_atoms

    def test_tropp_case_iv(self):
        tp = TropicalPSemiring(2)
        db = Database(
            pops=tp, relations={"E": {("a", "b"): tp.singleton(1.0)}}
        )
        report = classify(programs.sssp("a"), db, stability_p=2)
        assert report.taxonomy_case == "(iv)"
        assert report.linear
        assert report.bound == sum(3 ** i for i in range(1, 3))

    def test_trop_eta_case_iii(self):
        te = TropicalEtaSemiring(1.0)
        db = Database(pops=te, relations={"E": {("a", "b"): te.singleton(1.0)}})
        report = classify(
            programs.sssp("a"),
            db,
            stable=True,
            stability_p=None,
            probe_budget=4,  # keep the probe from finding a fake index
        )
        # The probe on small samples may report a small uniform index;
        # passing stable=True + stability_p=None forces case analysis
        # via the probe: accept either (iii) or (iv) with a bound.
        assert report.taxonomy_case in ("(iii)", "(iv)")

    def test_naturals_unclassified(self, tc_program):
        db = Database(pops=NAT, relations={"E": {("a", "b"): 2}})
        report = classify(tc_program, db, probe_budget=8)
        assert report.taxonomy_case == "(i)/(ii)"
        assert report.bound is None


class TestBoundsRespected:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_measured_steps_below_zero_stable_bound(self, seed):
        edges = workloads.random_weighted_digraph(6, 0.4, seed=seed)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        prog = programs.apsp()
        report = classify(prog, db)
        result = naive_fixpoint(prog, db)
        assert result.steps <= report.bound + 1

    @pytest.mark.parametrize("p", [0, 1, 2])
    def test_tropp_cycle_respects_cor_5_21(self, p):
        """Linear datalog° over Trop+_p on the n-cycle: ≤ (p+1)n naïve
        steps (matrix stability (p+1)n − 1, Corollary 5.21)."""
        tp = TropicalPSemiring(p)
        n = 4
        edges = {
            k: tp.singleton(w)
            for k, w in workloads.cycle_edges(n, weight=1.0).items()
        }
        db = Database(pops=tp, relations={"E": edges})
        result = naive_fixpoint(programs.sssp(0), db)
        n_atoms = count_ground_atoms(programs.sssp(0), db)
        assert result.steps <= tropp_linear_bound(p, n_atoms) + 1

    def test_tropp_needs_more_steps_than_trop(self):
        """Higher p ⇒ later convergence on the same cycle (shape check)."""
        steps = []
        for p in (0, 1, 2):
            tp = TropicalPSemiring(p)
            edges = {
                k: tp.singleton(w)
                for k, w in workloads.cycle_edges(5, weight=1.0).items()
            }
            db = Database(pops=tp, relations={"E": edges})
            steps.append(naive_fixpoint(programs.sssp(0), db).steps)
        assert steps[0] < steps[1] < steps[2]
