"""The source-codegen kernel backend (``engine="codegen"``).

Covers the codegen pipeline end to end:

* codegen == compiled == interpreted fixpoints on the paper's
  workloads and on hypothesis-generated programs with cyclic, mutually
  recursive and conditional bodies, across classic-Boolean / tropical /
  THREE / lifted-reals value spaces, for both fixpoint engines and all
  schedules;
* join-counter parity: the generated kernels count every probe, scan,
  prune and fallback event exactly like the closure kernels (same Plan
  IR, same event order);
* source caching: one generation + ``compile()`` per (rule, body[,
  variant]) per evaluator (``JoinStats.codegen_kernels``), every later
  fixpoint iteration a ``kernel_cache_hits`` reuse — no recompiles
  across iterations;
* the debugging hook: generated source is retained on the kernel and
  registered with :mod:`linecache`;
* grounded/hybrid wiring and the ``engine=`` knob's validation.
"""

from __future__ import annotations

import linecache
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import programs, workloads
from repro.core import Database, HybridEvaluator, ThresholdRule, solve
from repro.core.ast import Compare, Constant, terms, var
from repro.core.grounding import ground_program
from repro.core.naive import NaiveEvaluator
from repro.core.rules import (
    Indicator,
    Program,
    RelAtom,
    Rule,
    SumProduct,
)
from repro.semirings import BOOL, LIFTED_REAL, REAL_PLUS, THREE, TROP

#: The subject engine leads the differential tuple; the CI engine
#: matrix overrides it via ``DATALOGO_ENGINE`` to re-run the whole
#: differential suite with each backend as the subject.
_SUBJECT = os.environ.get("DATALOGO_ENGINE", "codegen")
ENGINES = tuple(
    dict.fromkeys((_SUBJECT, "codegen", "compiled", "interpreted"))
)


def _line_db(n=10, pops=TROP):
    return Database(pops=pops, relations={"E": dict(workloads.line_edges(n))})


# ---------------------------------------------------------------------------
# codegen == compiled == interpreted on the paper's workloads.
# ---------------------------------------------------------------------------


class TestCodegenDifferentials:
    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    @pytest.mark.parametrize("schedule", ["monolithic", "scc", "parallel"])
    def test_sssp_line(self, method, schedule):
        db = _line_db(12)
        results = {
            engine: solve(
                programs.sssp(0), db, method=method, schedule=schedule,
                engine=engine,
            )
            for engine in ENGINES
        }
        assert results["codegen"].instance.equals(
            results["interpreted"].instance
        )
        assert results["codegen"].instance.equals(
            results["compiled"].instance
        )
        assert results[_SUBJECT].instance.equals(
            results["interpreted"].instance
        )

    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_layered_sssp(self, method):
        db = _line_db(10)
        prog = programs.layered_sssp(0)
        codegen = solve(prog, db, method=method, engine="codegen")
        interpreted = solve(prog, db, method=method, engine="interpreted")
        assert codegen.instance.equals(interpreted.instance)

    def test_quadratic_tc_nonlinear_variants(self):
        # Two IDB occurrences per body: every delta-variant store
        # assignment (new / delta / old) is compiled into source.
        dag = workloads.random_dag(10, 0.25, seed=8)
        db = Database(pops=BOOL, relations={"E": {e: True for e in dag}})
        prog = programs.quadratic_transitive_closure()
        codegen = solve(prog, db, method="seminaive", engine="codegen")
        interpreted = solve(prog, db, method="seminaive", engine="interpreted")
        assert codegen.instance.equals(interpreted.instance)

    def test_join_counter_parity_with_closures(self):
        # Same Plan IR, same event order: every join counter agrees
        # with the closure backend, not just the fixpoint.
        db = _line_db(12)
        codegen = solve(
            programs.sssp(0), db, schedule="monolithic", engine="codegen"
        )
        closures = solve(
            programs.sssp(0), db, schedule="monolithic", engine="compiled"
        )
        assert codegen.instance.equals(closures.instance)
        for counter in (
            "probes", "probed_keys", "scans", "scanned_keys",
            "arity_skips", "pushdown_prunes", "fallback_candidates",
            "fallback_extensions", "equality_bindings", "keys_examined",
            "value_probe_hits", "factor_lookups", "valuations",
            "products", "rule_applications", "rules_skipped",
            "kernel_cache_hits",
        ):
            assert codegen.stats[counter] == closures.stats[counter], counter

    def test_grounded_engine_knob(self):
        db = _line_db(6)
        codegen = ground_program(programs.sssp(0), db, engine="codegen")
        interpreted = ground_program(
            programs.sssp(0), db, engine="interpreted"
        )
        a = codegen.kleene().value
        b = interpreted.kleene().value
        assert set(a) == set(b)
        for key in a:
            assert TROP.eq(a[key], b[key])

    def test_hybrid_engine_knob(self):
        def build(engine):
            rules = [
                Rule(
                    "T",
                    terms(["X"]),
                    (
                        SumProduct((RelAtom("W", terms(["X"])),)),
                        SumProduct(
                            (RelAtom("T", terms(["Z"])),
                             RelAtom("E", terms(["Z", "X"]))),
                        ),
                    ),
                ),
            ]
            prog = Program(rules=rules, edbs={"W": 1, "E": 2})
            db = Database(
                pops=REAL_PLUS,
                relations={
                    "W": {(0,): 0.4, (1,): 0.2},
                    "E": {(0, 1): 0.5, (1, 2): 0.5, (2, 3): 0.5},
                },
            )
            threshold = ThresholdRule(
                head_relation="Big",
                head_args=terms(["X"]),
                body=SumProduct((RelAtom("T", terms(["X"])),)),
                predicate=lambda v: v > 0.3,
            )
            hybrid = HybridEvaluator(
                prog, [threshold], db, engine=engine, max_iterations=50
            )
            result = hybrid.run()
            return result.instance, hybrid.bool_facts("Big")

        inst_c, facts_c = build("codegen")
        inst_i, facts_i = build("interpreted")
        assert inst_c.equals(inst_i)
        assert facts_c == facts_i

    def test_total_heads_three(self):
        # THREE is not naturally ordered: heads totalize over the whole
        # ground-atom space; the generated accumulation must interact
        # with the pre-seeded zeros exactly like the closure path.
        rules = [
            Rule(
                "R",
                terms(["X"]),
                (
                    SumProduct((RelAtom("A", terms(["X"])),)),
                    SumProduct(
                        (RelAtom("R", terms(["Z"])),
                         RelAtom("E", terms(["Z", "X"]))),
                    ),
                ),
            ),
        ]
        prog = Program(rules=rules, edbs={"A": 1, "E": 2})
        db = Database(
            pops=THREE,
            relations={
                "A": {(0,): 1, (1,): 0},
                "E": {(0, 1): 1, (1, 2): 1, (2, 3): 0},
            },
        )
        codegen = NaiveEvaluator(prog, db, engine="codegen").run()
        interpreted = NaiveEvaluator(prog, db, engine="interpreted").run()
        assert codegen.instance.equals(interpreted.instance)
        assert codegen.steps == interpreted.steps

    def test_engine_validation(self):
        db = _line_db(4)
        with pytest.raises(ValueError):
            solve(programs.sssp(0), db, plan="naive", engine="codegen")
        with pytest.raises(ValueError):
            solve(programs.sssp(0), db, engine="sourcery")


# ---------------------------------------------------------------------------
# Source caching and the debugging hook.
# ---------------------------------------------------------------------------


class TestCodegenCaching:
    def test_one_compile_per_body_across_iterations(self):
        # SSSP has two (rule, body) plans; the fixpoint runs ~n
        # iterations.  Generated kernels must be built exactly once per
        # plan and *reused* (cache hits), never regenerated mid-run.
        db = _line_db(10)
        result = solve(programs.sssp(0), db, schedule="monolithic",
                       engine="codegen")
        assert result.stats["iterations"] > 3
        assert result.stats["codegen_kernels"] == 2
        assert result.stats["kernel_cache_hits"] > 0
        assert (
            result.stats["kernel_cache_hits"]
            + result.stats["rules_skipped"]
            >= result.stats["iterations"] - 1
        )

    def test_seminaive_one_compile_per_variant(self):
        # Quadratic TC: one EDB body + one body with two IDB
        # occurrences = two delta variants, plus the naive bootstrap's
        # two body kernels.  Counted once each, reused every iteration.
        dag = workloads.random_dag(10, 0.25, seed=8)
        db = Database(pops=BOOL, relations={"E": {e: True for e in dag}})
        prog = programs.quadratic_transitive_closure()
        result = solve(prog, db, method="seminaive", schedule="monolithic",
                       engine="codegen")
        assert result.stats["iterations"] > 2
        assert result.stats["codegen_kernels"] == 4
        assert result.stats["kernel_cache_hits"] > 0

    def test_other_engines_never_generate_source(self):
        db = _line_db(8)
        for engine in ("compiled", "interpreted"):
            result = solve(programs.sssp(0), db, engine=engine)
            assert result.stats["codegen_kernels"] == 0

    def test_source_retained_and_in_linecache(self):
        db = _line_db(8)
        evaluator = NaiveEvaluator(programs.sssp(0), db, engine="codegen")
        kernel = evaluator._compiled_rule(1)
        assert "def _kernel(" in kernel.source
        assert "for " in kernel.source  # the flat join loop
        # The debugging hook: linecache resolves the generated file, so
        # tracebacks through generated kernels show real source lines.
        first_line = linecache.getline(kernel.filename, 1)
        assert first_line.startswith("def _kernel(")
        # And the cache serves the same object back (no regeneration).
        assert evaluator._compiled_rule(1) is kernel


# ---------------------------------------------------------------------------
# Hypothesis: codegen == compiled == interpreted over random programs.
# ---------------------------------------------------------------------------

_PREDS = ["P0", "P1", "P2", "P3"]

#: Body spec: ("edb",) | ("ind", c) | ("cond", c) | ("copy", j) | ("step", j).
_body_spec = st.one_of(
    st.just(("edb",)),
    st.tuples(st.just("ind"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("cond"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("copy"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("step"), st.integers(min_value=0, max_value=3)),
)

_program_spec = st.lists(
    st.lists(_body_spec, min_size=1, max_size=2),
    min_size=1,
    max_size=4,
)


def _build_program(spec, acyclic: bool) -> Program:
    rules = []
    for i, bodies in enumerate(spec):
        head = _PREDS[i]
        sum_products = []
        for body in bodies:
            kind = body[0]
            if kind == "edb":
                sum_products.append(SumProduct((RelAtom("A", terms(["X"])),)))
            elif kind == "ind":
                sum_products.append(
                    SumProduct(
                        (Indicator(Compare("==", var("X"), Constant(body[1]))),)
                    )
                )
            elif kind == "cond":
                # A conditional body: the filter is inlined into the
                # generated source as a native comparison.
                sum_products.append(
                    SumProduct(
                        (RelAtom("A", terms(["X"])),),
                        condition=Compare("!=", var("X"), Constant(body[1])),
                    )
                )
            else:
                j = body[1] % len(spec)
                if acyclic and j >= i:
                    sum_products.append(
                        SumProduct((RelAtom("A", terms(["X"])),))
                    )
                elif kind == "copy":
                    sum_products.append(
                        SumProduct((RelAtom(_PREDS[j], terms(["X"])),))
                    )
                else:
                    sum_products.append(
                        SumProduct(
                            (
                                RelAtom(_PREDS[j], terms(["Z"])),
                                RelAtom("E", terms(["Z", "X"])),
                            )
                        )
                    )
        rules.append(Rule(head, terms(["X"]), tuple(sum_products)))
    return Program(rules=rules, edbs={"A": 1, "E": 2})


def _database(pops, values):
    keys = [(0,), (1,), (2,)]
    return Database(
        pops=pops,
        relations={
            "A": dict(zip(keys, values)),
            "E": {(0, 1): values[0], (1, 2): values[1], (2, 3): values[2]},
        },
    )


class TestCodegenInvariance:
    @settings(max_examples=50, deadline=None)
    @given(_program_spec)
    def test_idempotent_semirings_with_cycles(self, spec):
        for pops, values in (
            (BOOL, [True, True, True]),
            (TROP, [1.0, 2.0, 4.0]),
            (THREE, [1, 0, 1]),
        ):
            prog = _build_program(spec, acyclic=False)
            db = _database(pops, values)
            interpreted = solve(
                prog, db, engine="interpreted", max_iterations=400
            )
            codegen = solve(prog, db, engine="codegen", max_iterations=400)
            assert codegen.instance.equals(interpreted.instance), pops.name
            compiled = solve(prog, db, engine="compiled", max_iterations=400)
            assert codegen.instance.equals(compiled.instance), pops.name
            if getattr(pops, "supports_minus", False):
                semi = solve(
                    prog,
                    db,
                    method="seminaive",
                    engine="codegen",
                    max_iterations=400,
                )
                assert semi.instance.equals(interpreted.instance), pops.name

    @settings(max_examples=30, deadline=None)
    @given(_program_spec)
    def test_lifted_reals_acyclic(self, spec):
        prog = _build_program(spec, acyclic=True)
        db = _database(LIFTED_REAL, [1.0, 2.0, 4.0])
        interpreted = solve(prog, db, engine="interpreted", max_iterations=400)
        codegen = solve(prog, db, engine="codegen", max_iterations=400)
        assert codegen.instance.equals(interpreted.instance)

    @settings(max_examples=20, deadline=None)
    @given(_program_spec)
    def test_parallel_schedule_invariance(self, spec):
        prog = _build_program(spec, acyclic=False)
        db = _database(TROP, [1.0, 2.0, 4.0])
        mono = solve(
            prog, db, schedule="monolithic", engine="codegen",
            max_iterations=400,
        )
        par = solve(
            prog, db, schedule="parallel", engine="codegen",
            max_iterations=400,
        )
        assert par.instance.equals(mono.instance)
