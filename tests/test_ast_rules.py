"""AST terms/conditions (§2.4) and rules/programs (§4, §4.5)."""

from __future__ import annotations

import pytest

from repro.core import (
    And,
    BoolAtom,
    Compare,
    FuncFactor,
    Indicator,
    KeyAsValue,
    KeyFunc,
    Not,
    Or,
    Program,
    ProgramError,
    RelAtom,
    Rule,
    SumProduct,
    TrueCond,
    ValueConst,
    case_rule,
    const,
    terms,
    var,
)
from repro.core.ast import (
    condition_holds,
    eval_term,
    positive_bool_atoms,
    term_variables,
)
from repro.core.rules import factor_atoms, factor_variables


class TestTerms:
    def test_coercion_convention(self):
        xs = terms(["X", "foo", 3, "Y2"])
        assert xs[0] == var("X")
        assert xs[1] == const("foo")
        assert xs[2] == const(3)
        assert xs[3] == var("Y2")

    def test_eval_term(self):
        assert eval_term(var("X"), {"X": 7}) == 7
        assert eval_term(const("a"), {}) == "a"
        succ = KeyFunc("succ", lambda d: d + 1, (var("D"),))
        assert eval_term(succ, {"D": 9}) == 10

    def test_nested_keyfunc_variables(self):
        inner = KeyFunc("succ", lambda d: d + 1, (var("D"),))
        outer = KeyFunc("dbl", lambda d: 2 * d, (inner,))
        assert [v.name for v in term_variables(outer)] == ["D"]
        assert eval_term(outer, {"D": 3}) == 8


class TestConditions:
    def lookup(self, rel, key):
        return rel == "E" and key in {("a", "b"), ("b", "c")}

    def test_bool_atom(self):
        cond = BoolAtom("E", terms(["X", "Y"]))
        assert condition_holds(cond, {"X": "a", "Y": "b"}, self.lookup)
        assert not condition_holds(cond, {"X": "a", "Y": "c"}, self.lookup)

    def test_connectives(self):
        e = BoolAtom("E", terms(["X", "Y"]))
        comp = Compare("==", var("X"), const("a"))
        both = e & comp
        either = e | comp
        negated = ~e
        v_good = {"X": "a", "Y": "b"}
        v_bad = {"X": "b", "Y": "a"}
        assert condition_holds(both, v_good, self.lookup)
        assert not condition_holds(both, v_bad, self.lookup)
        assert condition_holds(either, v_good, self.lookup)
        assert not condition_holds(either, v_bad, self.lookup)
        assert condition_holds(negated, v_bad, self.lookup)

    def test_compare_operators(self):
        for op, expected in [
            ("==", False), ("!=", True), ("<", True),
            ("<=", True), (">", False), (">=", False),
        ]:
            cond = Compare(op, var("A"), var("B"))
            assert cond.evaluate({"A": 1, "B": 2}) is expected

    def test_compare_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Compare("~", var("A"), var("B"))

    def test_positive_bool_atoms_only_conjunctive(self):
        e = BoolAtom("E", terms(["X", "Y"]))
        f = BoolAtom("F", terms(["Y"]))
        cond = And((e, Or((f, TrueCond())), Not(f)))
        found = [a.relation for a in positive_bool_atoms(cond)]
        assert found == ["E"]  # F is under Or/Not: filter-only

    def test_variables(self):
        cond = And((
            BoolAtom("E", terms(["X", "Y"])),
            Compare("<", var("Z"), const(5)),
        ))
        assert cond.variables() == {"X", "Y", "Z"}


class TestFactors:
    def test_factor_variables(self):
        assert set(factor_variables(RelAtom("T", terms(["X", "Y"])))) == {"X", "Y"}
        assert set(factor_variables(ValueConst(3))) == set()
        assert set(
            factor_variables(Indicator(Compare("==", var("X"), const(1))))
        ) == {"X"}
        fn = FuncFactor("not", (RelAtom("W", terms(["Y"])),))
        assert set(factor_variables(fn)) == {"Y"}
        assert set(factor_variables(KeyAsValue(var("C")))) == {"C"}

    def test_factor_atoms_under_function_flag(self):
        fn = FuncFactor("not", (RelAtom("W", terms(["Y"])),))
        atoms = list(factor_atoms(fn))
        assert atoms == [(RelAtom("W", terms(["Y"])), True)]
        plain = list(factor_atoms(RelAtom("W", terms(["Y"]))))
        assert plain == [(RelAtom("W", terms(["Y"])), False)]


class TestRules:
    def tc_rule(self):
        return Rule(
            "T",
            terms(["X", "Y"]),
            (
                SumProduct((RelAtom("E", terms(["X", "Y"])),)),
                SumProduct(
                    (
                        RelAtom("T", terms(["X", "Z"])),
                        RelAtom("E", terms(["Z", "Y"])),
                    )
                ),
            ),
        )

    def test_head_variables(self):
        assert self.tc_rule().head_variables() == {"X", "Y"}

    def test_linearity(self):
        prog = Program(rules=[self.tc_rule()])
        assert prog.is_linear()
        quad = Rule(
            "T",
            terms(["X", "Y"]),
            (
                SumProduct(
                    (
                        RelAtom("T", terms(["X", "Z"])),
                        RelAtom("T", terms(["Z", "Y"])),
                    )
                ),
            ),
        )
        assert not Program(rules=[quad]).is_linear()

    def test_program_merges_same_head(self):
        r1 = Rule("T", terms(["X", "Y"]),
                  (SumProduct((RelAtom("E", terms(["X", "Y"])),)),))
        r2 = Rule("T", terms(["X", "Y"]),
                  (SumProduct((RelAtom("F", terms(["X", "Y"])),)),))
        prog = Program(rules=[r1, r2])
        assert len(prog.rules) == 1
        assert len(prog.rules[0].bodies) == 2

    def test_program_rejects_arity_clash(self):
        r1 = Rule("T", terms(["X"]), (SumProduct((RelAtom("E", terms(["X", "X"])),)),))
        r2 = Rule("T", terms(["X", "Y"]),
                  (SumProduct((RelAtom("E", terms(["X", "Y"])),)),))
        with pytest.raises(ProgramError):
            Program(rules=[r1, r2])

    def test_program_rejects_unsafe_head(self):
        unsafe = Rule("T", terms(["X", "Y"]),
                      (SumProduct((RelAtom("E", terms(["X", "X"])),)),))
        with pytest.raises(ProgramError) as err:
            Program(rules=[unsafe])
        assert "head variables" in str(err.value)

    def test_program_infers_edb_arities(self):
        prog = Program(rules=[self.tc_rule()])
        assert prog.edbs == {"E": 2}
        assert prog.idbs == {"T": 2}

    def test_constants_collected(self):
        rule = Rule(
            "L",
            terms(["X"]),
            (
                SumProduct(
                    (Indicator(Compare("==", var("X"), const("a"))),)
                ),
                SumProduct(
                    (RelAtom("E", (var("X"), const(42))),),
                ),
            ),
        )
        prog = Program(rules=[rule])
        assert prog.constants() == {"a", 42}


class TestCaseRule:
    def test_desugaring_mutual_exclusion(self):
        c1 = Compare("==", var("I"), const(0))
        c2 = Compare("<", var("I"), const(10))
        body1 = SumProduct((RelAtom("V", (const(0),)),))
        body2 = SumProduct((RelAtom("W", (var("I"),)),))
        body3 = SumProduct((ValueConst(99),))
        rule = case_rule("W", (var("I"),), [(c1, body1), (c2, body2), (None, body3)])
        assert len(rule.bodies) == 3
        # Branch 2 must carry ¬C1 ∧ C2; branch 3 (else) ¬C1 ∧ ¬C2.
        cond2 = rule.bodies[1].condition
        assert isinstance(cond2, And)
        assert isinstance(cond2.parts[0], Not)
        cond3 = rule.bodies[2].condition
        assert isinstance(cond3, And)
        assert all(isinstance(p, Not) for p in cond3.parts)

    def test_else_only(self):
        body = SumProduct((ValueConst(1),))
        rule = case_rule("W", (var("I"),), [(None, body)])
        assert isinstance(rule.bodies[0].condition, TrueCond)

    def test_preserves_existing_body_condition(self):
        c1 = Compare("==", var("I"), const(0))
        guarded = SumProduct(
            (RelAtom("V", (var("I"),)),),
            condition=BoolAtom("Idx", (var("I"),)),
        )
        rule = case_rule("W", (var("I"),), [(c1, guarded)])
        cond = rule.bodies[0].condition
        assert isinstance(cond, And)
