"""Solve-time guardrails: pre-flight verdicts, budgets, partial results.

The robustness contract (ISSUE 8): every solve gets a structured
convergence prediction up front, enforceable resource budgets during,
and — when a budget trips — a :class:`BudgetExceeded` carrying the last
consistent fixpoint prefix instead of losing all work.  The hypothesis
block at the bottom asserts the soundness property that makes partial
results *usable*: a budget-interrupted prefix is ``⊑`` the true least
fixpoint pointwise, across TROP / BOOL / THREE and both iterative
methods.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import programs, workloads
from repro.core import (
    Budget,
    BudgetExceeded,
    Database,
    FaultPlan,
    PartialResult,
    PreflightVerdict,
    preflight,
    solve,
)
from repro.core.guardrails import FaultSpec, payload_checksum
from repro.fixpoint import DivergenceError
from repro.semirings import BOOL, NAT, THREE, TROP, TropicalPSemiring


def _trop_db(n=8, p=0.4, seed=1):
    edges = workloads.random_weighted_digraph(n, p, seed=seed)
    return Database(pops=TROP, relations={"E": dict(edges)})


def _nat_cycle_db():
    """Fig. 2(b)'s cyclic bill-of-material over ℕ — the canonical
    case-(i) diverger (no stability, values grow without bound)."""
    edges, costs = workloads.fig_2b_bom()
    return Database(
        pops=NAT,
        relations={"C": {(k,): int(v) for k, v in costs.items()}},
        bool_relations={"E": set(edges)},
    )


# ---------------------------------------------------------------------------
# pre-flight verdicts
# ---------------------------------------------------------------------------


class TestPreflight:
    def test_zero_stable_core_is_bounded(self):
        verdict = preflight(programs.apsp(), _trop_db())
        assert verdict.status == "bounded"
        assert verdict.bound is not None
        assert verdict.describe() == f"bounded-by-{verdict.bound}"
        assert verdict.report is not None

    def test_bool_tc_is_bounded(self):
        db = Database(
            pops=BOOL, relations={"E": {("a", "b"): True, ("b", "c"): True}}
        )
        verdict = preflight(programs.transitive_closure(), db)
        assert verdict.status == "bounded"

    def test_nat_cycle_may_diverge(self):
        verdict = preflight(programs.bill_of_material(), _nat_cycle_db())
        assert verdict.status == "may-diverge"
        assert verdict.describe().startswith("may-diverge: ")
        assert verdict.bound is None

    def test_as_dict_shape(self):
        verdict = preflight(programs.apsp(), _trop_db())
        payload = verdict.as_dict()
        assert payload["status"] == "bounded"
        assert payload["verdict"] == verdict.describe()
        assert payload["bound"] == verdict.bound
        assert payload["taxonomy_case"] == verdict.report.taxonomy_case

    def test_never_raises_on_analysis_failure(self):
        verdict = preflight(programs.apsp(), object())
        assert verdict.status == "may-diverge"
        assert "pre-flight analysis failed" in verdict.reason

    def test_large_instance_takes_coarse_path(self, monkeypatch):
        """Above the N cap the bignum Theorem 5.12 bounds are skipped:
        a 0-stable core still reads ``bounded`` with the N fallback."""
        from repro.core import guardrails

        monkeypatch.setattr(guardrails, "_BOUND_N_CAP", 1)
        verdict = preflight(programs.apsp(), _trop_db())
        assert verdict.status == "bounded"
        assert verdict.report is None  # classify() never ran
        # For a 0-stable core the coarse bound (Corollary 5.19's N)
        # agrees with the exact path's zero-stable bound.
        exact = preflight(programs.apsp(), _trop_db())
        assert verdict.bound == exact.bound

    def test_coarse_path_stable_core_converges(self, monkeypatch):
        """A p-stable (p>0) core above the cap: convergence guaranteed
        but the explicit bound is omitted rather than materialized."""
        from repro.core import guardrails

        monkeypatch.setattr(guardrails, "_BOUND_N_CAP", 1)
        tp1 = TropicalPSemiring(1)
        db = Database(
            pops=tp1,
            relations={"E": {("a", "b"): tp1.singleton(1.0)}},
        )
        verdict = preflight(programs.apsp(), db)
        assert verdict.status == "converges"
        assert verdict.bound is None

    def test_solve_attaches_verdict(self):
        result = solve(programs.apsp(), _trop_db())
        assert isinstance(result.verdict, PreflightVerdict)
        assert result.verdict.status == "bounded"

    def test_preflight_off_means_no_verdict(self):
        result = solve(programs.apsp(), _trop_db(), preflight="off")
        assert result.verdict is None

    def test_bad_preflight_knob_rejected(self):
        with pytest.raises(ValueError, match="preflight"):
            solve(programs.apsp(), _trop_db(), preflight="maybe")


# ---------------------------------------------------------------------------
# budget mechanics
# ---------------------------------------------------------------------------


class TestBudget:
    def test_unarmed_budget_is_free(self):
        budget = Budget()
        assert budget.wall_hook() is None
        budget.charge_size(10**9)  # no limits armed → no trip
        budget.poll()

    def test_tuple_budget_trips_with_committed_spend(self):
        budget = Budget(max_tuples=10)
        budget.commit_tuples(7)
        budget.charge_size(3)  # exactly at the limit is fine
        with pytest.raises(BudgetExceeded) as err:
            budget.charge_size(4)
        assert err.value.resource == "tuples"
        assert err.value.limit == 10
        assert err.value.spent == 11

    def test_wall_budget_polls(self):
        budget = Budget(max_wall_s=0.0)
        assert budget.wall_hook() is not None
        with pytest.raises(BudgetExceeded) as err:
            budget.poll()
        assert err.value.resource == "wall_s"

    def test_budget_exceeded_is_divergence_error(self):
        # Pre-guardrail callers catching DivergenceError keep working.
        assert issubclass(BudgetExceeded, DivergenceError)

    def test_attach_partial_innermost_wins(self):
        from repro.core.guardrails import attach_partial

        exc = BudgetExceeded(resource="tuples", limit=1, spent=2)
        inner = PartialResult(instance=object(), steps=3)
        outer = PartialResult(instance=object(), steps=9)
        attach_partial(exc, inner)
        attach_partial(exc, outer)
        assert exc.partial is inner


class TestBudgetsThroughSolve:
    def test_may_diverge_under_iteration_budget(self):
        """The ISSUE acceptance criterion: a known-divergent program
        under ``max_iterations`` raises a *structured* BudgetExceeded
        carrying a non-empty partial and the pre-flight verdict."""
        with pytest.raises(BudgetExceeded) as err:
            solve(
                programs.bill_of_material(),
                _nat_cycle_db(),
                max_iterations=5,
            )
        exc = err.value
        assert exc.resource == "iterations"
        assert exc.limit == 5
        assert exc.verdict is not None
        assert exc.verdict.status == "may-diverge"
        assert exc.partial is not None
        assert exc.partial.steps == 5
        assert len(exc.partial.instance.support("T")) > 0

    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_tuple_budget_carries_partial(self, method):
        with pytest.raises(BudgetExceeded) as err:
            solve(programs.apsp(), _trop_db(), method=method, max_tuples=5)
        exc = err.value
        assert exc.resource == "tuples"
        assert exc.partial is not None
        assert exc.partial.instance.size() > 0
        if method == "seminaive":
            assert exc.partial.delta is not None

    def test_wall_budget_interrupts_inside_iteration(self):
        with pytest.raises(BudgetExceeded) as err:
            solve(
                programs.apsp(),
                _trop_db(10, 0.5, seed=2),
                max_wall_s=0.0,
            )
        assert err.value.resource == "wall_s"

    def test_exhaustion_message_is_preserved(self):
        # The pre-guardrail DivergenceError text survives verbatim, so
        # message-matching callers are unbroken.
        with pytest.raises(DivergenceError, match="did not converge"):
            solve(
                programs.bill_of_material(),
                _nat_cycle_db(),
                max_iterations=5,
            )

    @pytest.mark.parametrize("method", ["grounded", "linear"])
    def test_one_shot_methods_reject_iterative_budgets(self, method):
        db = Database(
            pops=TROP, relations={"E": {("a", "b"): 1.0, ("b", "c"): 2.0}}
        )
        with pytest.raises(ValueError, match="budget"):
            solve(programs.apsp(), db, method=method, max_wall_s=1.0)
        # …but the pre-flight verdict still rides along.
        extra = {"stability_p": 0} if method == "linear" else {}
        result = solve(programs.apsp(), db, method=method, **extra)
        assert result.verdict is not None

    def test_scheduler_partial_keeps_completed_strata(self):
        """A budget tripping in a later stratum keeps the frozen
        earlier strata in the partial instance."""
        program = programs.layered_sssp("a")
        edges = {("a", "b"): 1.0, ("b", "c"): 2.0, ("c", "d"): 1.0}
        db = Database(pops=TROP, relations={"E": dict(edges)})
        full = solve(program, db, schedule="scc")
        budget = full.instance.size() - 1
        with pytest.raises(BudgetExceeded) as err:
            solve(program, db, schedule="scc", max_tuples=budget)
        partial = err.value.partial
        assert partial is not None
        # Whatever it kept agrees with the fixpoint exactly.
        for rel in partial.instance.relations():
            for key, value in partial.instance.support(rel).items():
                assert TROP.eq(value, full.instance.get(rel, key))


# ---------------------------------------------------------------------------
# fault plans (DATALOGO_FAULT)
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_single(self):
        plan = FaultPlan.parse("crash@2:1")
        assert plan.specs == (FaultSpec("crash", 2, 1, 0),)
        assert bool(plan)

    def test_parse_defaults_and_generation(self):
        assert FaultPlan.parse("stall@3").specs == (
            FaultSpec("stall", 3, 0, 0),
        )
        assert FaultPlan.parse("corrupt@2:1:4").specs == (
            FaultSpec("corrupt", 2, 1, 4),
        )
        assert FaultPlan.parse("crash@2:0:*").specs == (
            FaultSpec("crash", 2, 0, None),
        )

    def test_parse_multi_clause(self):
        plan = FaultPlan.parse("crash@2:0, corrupt@3:1")
        assert [s.kind for s in plan.specs] == ["crash", "corrupt"]

    @pytest.mark.parametrize(
        "raw", ["explode@2:0", "crash", "crash@x:0", "crash@2:0:y"]
    )
    def test_parse_rejects_malformed(self, raw):
        with pytest.raises(ValueError, match="DATALOGO_FAULT"):
            FaultPlan.parse(raw)

    def test_empty_env_is_falsy(self):
        plan = FaultPlan.from_env({})
        assert not plan
        assert not plan.should("crash", 2, 0, 0)

    def test_from_env_reads_mapping(self):
        plan = FaultPlan.from_env({"DATALOGO_FAULT": "stall@1:0"})
        assert plan.should("stall", 1, 0, 0)

    def test_pinned_generation_fires_once(self):
        plan = FaultPlan.parse("crash@2:1")
        assert not plan.should("crash", 1, 1, 0)  # wrong step
        assert not plan.should("crash", 2, 0, 0)  # wrong worker
        assert not plan.should("stall", 2, 1, 0)  # wrong kind
        assert not plan.should("crash", 2, 1, 1)  # wrong generation
        assert plan.should("crash", 2, 1, 0)
        assert not plan.should("crash", 2, 1, 0)  # consumed

    def test_wildcard_fires_once_per_generation(self):
        plan = FaultPlan.parse("crash@2:0:*")
        for generation in (0, 1, 2):
            assert plan.should("crash", 2, 0, generation)
            assert not plan.should("crash", 2, 0, generation)

    def test_payload_checksum_detects_mutation(self):
        payload = [("T", [(("a", "b"), 1.0), (("b", "c"), 2.0)])]
        crc = payload_checksum(payload)
        assert crc == payload_checksum(
            [("T", [(("a", "b"), 1.0), (("b", "c"), 2.0)])]
        )
        assert crc != payload_checksum(
            [("T", [(("a", "b"), 1.0), (("b", "c"), 2.5)])]
        )


# ---------------------------------------------------------------------------
# partial ⊑ fixpoint soundness (hypothesis)
# ---------------------------------------------------------------------------

_SPACES = ["trop", "bool", "three"]


def _tc_database(space: str, n: int, seed: int) -> Database:
    """The same random digraph shape read over three value spaces."""
    edges = workloads.random_weighted_digraph(n, 0.35, seed=seed)
    if space == "trop":
        return Database(pops=TROP, relations={"E": dict(edges)})
    pops = BOOL if space == "bool" else THREE
    return Database(
        pops=pops, relations={"E": {key: True for key in edges}}
    )


class TestPartialSoundness:
    """Budget-interrupted prefixes are ``⊑`` the true least fixpoint.

    The Kleene iterates form an ascending chain in the POPS order, and
    a :class:`PartialResult` is always a fully applied iterate — so
    every value it holds must be ``⊑`` the converged value, pointwise,
    under any budget, method, or value space.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        space=st.sampled_from(_SPACES),
        n=st.integers(min_value=4, max_value=9),
        seed=st.integers(min_value=0, max_value=200),
        max_iterations=st.integers(min_value=1, max_value=3),
        method=st.sampled_from(["naive", "seminaive"]),
    )
    def test_partial_leq_fixpoint(
        self, space, n, seed, max_iterations, method
    ):
        # THREE has no ⊖ operator: the semi-naïve differential rule
        # does not apply (Definition 6.2) — naive only.
        assume(not (space == "three" and method == "seminaive"))
        db = _tc_database(space, n, seed)
        full = solve(programs.transitive_closure(), db, method=method)
        try:
            interrupted = solve(
                programs.transitive_closure(),
                db,
                method=method,
                max_iterations=max_iterations,
            )
        except BudgetExceeded as exc:
            assert exc.partial is not None
            partial = exc.partial.instance
            assert exc.partial.steps <= max_iterations
        else:
            # Converged inside the budget — the "prefix" is the
            # fixpoint itself and the property holds with equality.
            partial = interrupted.instance
        pops = db.pops
        for rel in partial.relations():
            fixpoint = full.instance.support(rel)
            for key, value in partial.support(rel).items():
                assert key in fixpoint, (rel, key)
                assert pops.leq(value, fixpoint[key]), (rel, key)

    @settings(max_examples=20, deadline=None)
    @given(
        space=st.sampled_from(_SPACES),
        seed=st.integers(min_value=0, max_value=100),
        max_tuples=st.integers(min_value=1, max_value=12),
    )
    def test_tuple_budget_partial_leq_fixpoint(
        self, space, seed, max_tuples
    ):
        db = _tc_database(space, 8, seed)
        full = solve(programs.transitive_closure(), db)
        try:
            solve(
                programs.transitive_closure(), db, max_tuples=max_tuples
            )
        except BudgetExceeded as exc:
            if exc.partial is None:
                return  # tripped before the first iterate completed
            partial = exc.partial.instance
        else:
            return  # fixpoint fit inside the budget
        pops = db.pops
        for rel in partial.relations():
            for key, value in partial.support(rel).items():
                assert pops.leq(value, full.instance.get(rel, key))
