"""Fixpoint theory (Section 3): posets, iteration, composition bounds."""

from __future__ import annotations

import pytest

from repro.fixpoint import (
    ChainProbe,
    DivergenceError,
    FiniteChain,
    MapPoset,
    Poset,
    ProductPoset,
    ascending_chain_probe,
    e_bound,
    function_stability_index,
    general_datalog_bound,
    iterate_n,
    kleene_fixpoint,
    lemma_3_2_bound,
    lemma_3_3_bound,
    linear_datalog_bound,
    max_unary_index,
    monotone_self_maps,
    pair_tightness_search,
    zero_stable_bound,
)
from repro.semirings import TROP


class TestPosets:
    def test_chain_basics(self):
        chain = FiniteChain(3)
        assert chain.bottom == 0
        assert chain.top == 3
        assert chain.leq(1, 2)
        assert chain.lt(1, 2)
        assert not chain.lt(2, 2)

    def test_product_poset(self):
        prod = ProductPoset([FiniteChain(1), FiniteChain(2)])
        assert prod.bottom == (0, 0)
        assert prod.leq((0, 1), (1, 2))
        assert not prod.leq((1, 0), (0, 2))
        assert len(prod.elements) == 2 * 3

    def test_map_poset(self):
        chain = FiniteChain(2)
        maps = MapPoset(chain)
        assert maps.leq({}, {"a": 1})
        assert maps.leq({"a": 1}, {"a": 2, "b": 1})
        assert not maps.leq({"a": 2}, {"a": 1})
        assert maps.eq({"a": 0}, {})  # bottom values are implicit

    def test_monotonicity_check(self):
        chain = FiniteChain(2)
        assert chain.is_monotone(lambda x: min(x + 1, 2))
        assert not chain.is_monotone(lambda x: 2 - x)

    def test_monotonicity_needs_finite_carrier(self):
        poset = Poset(leq=lambda a, b: a <= b, bottom=0)
        with pytest.raises(ValueError):
            poset.is_monotone(lambda x: x)


class TestAscendingChains:
    def test_finite_chain_probe(self):
        chain = FiniteChain(5)
        probe = ascending_chain_probe(chain, 0, lambda x: min(x + 1, 5))
        assert probe == ChainProbe(strictly_ascended=5, exhausted_budget=False)

    def test_acc_violation_in_trop(self):
        """1 ⊐ 1/2 ⊐ 1/3 ⊏̸ … never stabilizes: Trop+ violates ACC."""
        poset = Poset(leq=TROP.leq, bottom=TROP.zero, eq=TROP.eq)
        probe = ascending_chain_probe(
            poset, 1.0, lambda x: x / (1 + x), budget=100
        )
        assert probe.exhausted_budget

    def test_non_ascending_step_rejected(self):
        chain = FiniteChain(5)
        with pytest.raises(ValueError):
            ascending_chain_probe(chain, 3, lambda x: x - 1)


class TestKleene:
    def test_fixpoint_and_steps(self):
        result = kleene_fixpoint(
            lambda x: min(x + 1, 4), 0, lambda a, b: a == b
        )
        assert result.value == 4
        assert result.steps == 4

    def test_trace_capture(self):
        result = kleene_fixpoint(
            lambda x: min(x + 2, 5),
            0,
            lambda a, b: a == b,
            capture_trace=True,
        )
        assert result.trace == [0, 2, 4, 5, 5]

    def test_divergence(self):
        with pytest.raises(DivergenceError) as err:
            kleene_fixpoint(lambda x: x + 1, 0, lambda a, b: a == b, 50)
        assert "50" in str(err.value)

    def test_iterate_n(self):
        assert iterate_n(lambda x: x + 3, 0, 4) == 12

    def test_function_stability_index(self):
        assert function_stability_index(
            lambda x: min(x + 1, 3), 0, lambda a, b: a == b
        ) == 3
        assert (
            function_stability_index(
                lambda x: x + 1, 0, lambda a, b: a == b, budget=10
            )
            is None
        )


class TestBounds:
    def test_e_bound_formula(self):
        assert e_bound([2]) == 2
        assert e_bound([2, 3]) == 3 + 3 * 2  # sorted descending: 3, 3·2
        assert e_bound([1, 1, 1]) == 3
        assert e_bound([3, 2, 1]) == 3 + 6 + 6

    def test_e_bound_sorts_descending(self):
        assert e_bound([1, 5]) == e_bound([5, 1]) == 5 + 5

    def test_lemma_bounds(self):
        assert lemma_3_2_bound(2, 3) == 5
        assert lemma_3_3_bound(2, 3) == 6 + 3

    def test_datalog_bounds(self):
        assert zero_stable_bound(7) == 7
        assert linear_datalog_bound(0, 3) == 1 + 1 + 1
        assert general_datalog_bound(0, 2) == 2 + 4
        assert linear_datalog_bound(1, 2) == 2 + 4
        assert general_datalog_bound(1, 2) == 3 + 9


class TestCloneSearch:
    def test_chain_unary_index_is_length(self):
        """Every monotone self-map of chain[0..n] is n-stable, and some
        map attains the bound (the successor map)."""
        for n in (1, 2, 3):
            assert max_unary_index(FiniteChain(n)) == n

    def test_monotone_self_map_enumeration_count(self):
        """Monotone self-maps of a chain of n+1 elements number
        C(2n+1, n) / Catalan-adjacent; for n=2: 10 maps."""
        maps = list(monotone_self_maps(FiniteChain(2)))
        assert len(maps) == 10

    def test_pair_search_respects_lemma_3_3(self):
        p, q, best = pair_tightness_search(FiniteChain(1), FiniteChain(1))
        assert (p, q) == (1, 1)
        assert best <= lemma_3_3_bound(1, 1)
        # Products of chains ratchet every step: the index can exceed
        # the unary max but never the lemma bound.
        assert best >= max(p, q)
