"""Executable versions of the paper's fine-print arguments.

Each test here corresponds to a specific inline argument of the paper
that is easy to get wrong in an implementation:

* Example 2.6 — why conditionals (not indicator functions) are needed
  over a POPS whose 0 is not absorbing;
* Proposition 2.4 — closure of the core semiring;
* Lemma 3.2 / Lemma 3.3 — the two-function composition indices,
  replayed on concrete monotone functions;
* Example 5.15 — absorption of new monomials in a 1-stable semiring;
* Section 2.2 — "we just have to be careful to not include monomials
  we don't want".
"""

from __future__ import annotations

import pytest

from repro.core import (
    BoolAtom,
    Database,
    Indicator,
    Monomial,
    Polynomial,
    Program,
    RelAtom,
    Rule,
    SumProduct,
    naive_fixpoint,
    terms,
)
from repro.fixpoint import (
    function_stability_index,
    lemma_3_2_bound,
    lemma_3_3_bound,
)
from repro.semirings import BOTTOM, LIFTED_REAL, TROP, TropicalPSemiring
from repro.semirings.base import POPS


class TestExample26ConditionalVsIndicator:
    """Total cost of neighbours over R⊥: the indicator encoding breaks."""

    def _db(self):
        # Graph a→b, a→c; costs: b=2, c=3, d unknown (⊥ by absence is
        # NOT the point — the paper's point is a node whose cost is
        # unknown but which is *not* a neighbour of a).
        return Database(
            pops=LIFTED_REAL,
            relations={"C": {("b",): 2.0, ("c",): 3.0}},
            bool_relations={
                "E": {("a", "b"), ("a", "c")},
                "NodeSet": {("a",), ("b",), ("c",), ("d",)},
            },
        )

    def test_conditional_version_is_correct(self):
        """T(x) :- Σ_y {C(y) | E(x, y)} — Eq. (11), ranges only over
        actual neighbours, so the unknown C(d) cannot poison T(a)."""
        rule = Rule(
            "T",
            terms(["X"]),
            (
                SumProduct(
                    (RelAtom("C", terms(["Y"])),),
                    condition=BoolAtom("E", terms(["X", "Y"])),
                ),
            ),
        )
        program = Program(rules=[rule], edbs={"C": 1}, bool_edbs={"E": 2})
        result = naive_fixpoint(program, self._db())
        assert result.instance.get("T", ("a",)) == 5.0

    def test_indicator_version_poisons_the_sum(self):
        """T(x) :- Σ_y 1_{E(x,y)} ⊗ C(y) ranges over the whole domain:
        the term for y = d is 0 ⊗ ⊥ = ⊥, and x ⊕ ⊥ = ⊥ — exactly the
        failure Example 2.6 describes."""
        rule = Rule(
            "T",
            terms(["X"]),
            (
                SumProduct(
                    (
                        Indicator(BoolAtom("E", terms(["X", "Y"]))),
                        RelAtom("C", terms(["Y"])),
                    ),
                    condition=BoolAtom("NodeSet", terms(["X"]))
                    & BoolAtom("NodeSet", terms(["Y"])),
                ),
            ),
        )
        program = Program(
            rules=[rule], edbs={"C": 1}, bool_edbs={"E": 2, "NodeSet": 1}
        )
        result = naive_fixpoint(program, self._db())
        assert result.instance.get("T", ("a",)) is BOTTOM


class TestProposition24CoreClosure:
    @pytest.mark.parametrize(
        "pops",
        [TROP, LIFTED_REAL, TropicalPSemiring(1)],
        ids=lambda s: s.name,
    )
    def test_saturated_set_closed_under_operations(self, pops: POPS):
        saturated = [pops.saturate(v) for v in pops.sample_values()]
        for a in saturated:
            for b in saturated:
                for out in (pops.add(a, b), pops.mul(a, b)):
                    assert pops.eq(out, pops.saturate(out))


class TestLemma32And33Executable:
    """Replay the composition lemmas on concrete capped counters."""

    @staticmethod
    def _eq(a, b):
        return a == b

    def test_lemma_3_2(self):
        """g ignores x: h = (f, g) stabilizes within p + q (here exactly)."""
        p, q = 3, 2
        g = lambda y: min(y + 1, q)                 # q-stable on 0..q
        f = lambda x, y: min(x + (1 if y == q else 0), p)  # p-stable once ȳ

        def h(state):
            x, y = state
            return (f(x, y), g(y))

        index = function_stability_index(h, (0, 0), self._eq)
        assert index == p + q == lemma_3_2_bound(p, q)

    def test_lemma_3_3_bound_respected(self):
        """Mutually dependent pair: index ≤ pq + max(p, q)."""
        p, q = 2, 2
        f = lambda x, y: min(max(x, min(y, x + 1)), p)
        g = lambda x, y: min(max(y, min(x, y + 1)), q)

        def h(state):
            x, y = state
            return (f(x, y), g(x, y))

        index = function_stability_index(h, (0, 0), self._eq)
        assert index is not None
        assert index <= lemma_3_3_bound(p, q)

    def test_fixpoint_formula_of_lemma_3_3(self):
        """x̄ = F^(p)(⊥) with F(x) = f(x, g_x^(q)(⊥)) reproduces lfp(h)."""
        p_cap, q_cap = 3, 3
        f = lambda x, y: min(x + (1 if y >= 1 else 0), p_cap)
        g = lambda x, y: min(y + 1, q_cap)

        def h(state):
            x, y = state
            return (f(x, y), g(x, y))

        # Direct Kleene lfp of h.
        state = (0, 0)
        for _ in range(50):
            nxt = h(state)
            if nxt == state:
                break
            state = nxt
        # Lemma 3.3 construction.
        def g_q(x):
            y = 0
            for _ in range(q_cap + 1):
                y = g(x, y)
            return y

        def big_f(x):
            return f(x, g_q(x))

        x_bar = 0
        for _ in range(p_cap + 1):
            x_bar = big_f(x_bar)
        y_bar = g_q(x_bar)
        assert (x_bar, y_bar) == state


class TestExample515Absorption:
    """Over a 1-stable semiring, f = a₀ + a₂x² + a₃x³ + a₄x⁴ has
    stability index between 3 and 4: f⁽³⁾(0) ≠ f⁽²⁾(0) but
    f⁽⁴⁾(0) = f⁽³⁾(0) — new monomials are absorbed (Example 5.15)."""

    def _system(self, tp):
        s = tp.singleton
        return Polynomial((
            Monomial.make(s(1.0), {}),
            Monomial.make(s(2.0), {"x": 2}),
            Monomial.make(s(3.0), {"x": 3}),
            Monomial.make(s(5.0), {"x": 4}),
        ))

    def test_stability_between_three_and_four(self):
        tp = TropicalPSemiring(1)
        f = self._system(tp)

        def step(x):
            return f.evaluate(tp, {"x": x}, tp.zero)

        trace = [tp.zero]
        for _ in range(8):
            trace.append(step(trace[-1]))
        # f⁽¹⁾ ≠ f⁽²⁾ ≠ f⁽³⁾ in general; must be stationary by q = 4
        # (Lemma 5.11: univariate over a p-stable semiring is
        # (p+2)-stable; here p = 1 ⇒ index ≤ 3).
        assert trace[4] == trace[5] == trace[6]
        assert trace[3] == trace[4] or trace[2] != trace[3]

    @pytest.mark.parametrize("p", [0, 1, 2])
    def test_lemma_5_11_univariate_bound(self, p):
        """Univariate polynomials over a p-stable semiring are
        (p+2)-stable (Lemma 5.11(c)); linear ones (p+1)-stable (b)."""
        tp = TropicalPSemiring(p)
        quartic = self._system(tp)

        def step_quartic(x):
            return quartic.evaluate(tp, {"x": x}, tp.zero)

        idx = function_stability_index(step_quartic, tp.zero, tp.eq, budget=50)
        assert idx is not None and idx <= p + 2

        linear = Polynomial((
            Monomial.make(tp.singleton(1.0), {}),
            Monomial.make(tp.singleton(2.0), {"x": 1}),
        ))

        def step_linear(x):
            return linear.evaluate(tp, {"x": x}, tp.zero)

        idx_lin = function_stability_index(step_linear, tp.zero, tp.eq, budget=50)
        assert idx_lin is not None and idx_lin <= p + 1


class TestSection22MonomialOmission:
    def test_zero_coefficient_vs_omitted_monomial(self):
        """f(x) = 0·x + b  vs  g = b over R⊥ differ exactly at ⊥ —
        the Section 2.2 warning, at the polynomial-system level."""
        f = Polynomial((
            Monomial.make(0.0, {"x": 1}),
            Monomial.make(4.0, {}),
        ))
        g = Polynomial((Monomial.make(4.0, {}),))
        assert f.evaluate(LIFTED_REAL, {"x": BOTTOM}, BOTTOM) is BOTTOM
        assert g.evaluate(LIFTED_REAL, {"x": BOTTOM}, BOTTOM) == 4.0
        # On defined inputs they agree:
        assert f.evaluate(LIFTED_REAL, {"x": 2.0}, BOTTOM) == g.evaluate(
            LIFTED_REAL, {"x": 2.0}, BOTTOM
        )
