"""Durability layer (`core/journal.py`): WAL, checkpoints, recovery.

The headline property: **any byte prefix** of a valid journal —
including a torn mid-record tail — recovers to exactly the state of
replaying the surviving whole records, across TROP/BOOL/THREE.
"""

from __future__ import annotations

import os
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro import core, programs, workloads
from repro.core.guardrails import FaultPlan
from repro.core.incremental import IncrementalInstance, Mutation, fingerprint
from repro.core.journal import (
    JOURNAL_NAME,
    DurableInstance,
    InjectedCrash,
    JournalError,
    JournalWarning,
    MutationJournal,
    decode_records,
    encode_record,
    load_checkpoint,
    write_checkpoint,
)
from repro.semirings import BOOL, THREE, TROP


def trop_setup():
    db = core.Database(
        pops=TROP, relations={"E": dict(workloads.fig_2a_graph())}
    )
    batches = [
        [Mutation("insert", "E", ("a", "x"), 1.0)],
        [Mutation("insert", "E", ("x", "d"), 1.0),
         Mutation("insert", "E", ("x", "b"), 0.5)],
        [Mutation("delete", "E", ("a", "x"), None)],
        [Mutation("insert", "E", ("c", "x"), 2.0)],
    ]
    return programs.sssp("a"), TROP, db, batches


def bool_setup():
    db = core.Database(
        pops=BOOL,
        relations={"E": {("a", "b"): True, ("b", "c"): True,
                         ("a", "c"): True}},
    )
    batches = [
        [Mutation("insert", "E", ("c", "d"), True)],
        [Mutation("delete", "E", ("a", "b"), None)],
        [Mutation("insert", "E", ("d", "a"), True)],
    ]
    return programs.transitive_closure(), BOOL, db, batches


def three_setup():
    db = core.Database(
        pops=THREE,
        relations={"E": {("a", "b"): True, ("b", "c"): False}},
    )
    batches = [
        [Mutation("insert", "E", ("c", "a"), True)],
        [Mutation("delete", "E", ("b", "c"), None)],
        [Mutation("insert", "E", ("b", "b"), False)],
    ]
    return programs.transitive_closure(), THREE, db, batches


SETUPS = {"trop": trop_setup, "bool": bool_setup, "three": three_setup}


class TestRecordFormat:
    def test_round_trip(self):
        muts = [Mutation("insert", "E", ("a", "b"), 1.5),
                Mutation("delete", "E", ("b", "c"), None)]
        blob = encode_record(3, muts) + encode_record(4, muts[:1])
        records, good, anomaly = decode_records(blob)
        assert anomaly is None and good == len(blob)
        assert [seq for seq, _ in records] == [3, 4]
        assert records[0][1] == muts

    def test_crc_flip_detected(self):
        blob = bytearray(encode_record(1, [Mutation("insert", "E", ("a",), 1.0)]))
        blob[len(blob) // 2] ^= 0xFF
        records, good, anomaly = decode_records(bytes(blob))
        assert records == [] and good == 0 and anomaly is not None

    def test_non_monotonic_seq_rejected(self):
        blob = encode_record(2, [Mutation("insert", "E", ("a",), 1.0)]) + \
            encode_record(2, [Mutation("insert", "E", ("b",), 1.0)])
        records, good, anomaly = decode_records(blob)
        assert len(records) == 1 and anomaly is not None

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_any_prefix_yields_whole_record_prefix(self, data):
        """decode_records(blob[:k]) = the longest whole-record prefix."""
        batches = [
            [Mutation("insert", "E", ("a", "b"), float(i))]
            for i in range(4)
        ]
        blob = b"".join(
            encode_record(i + 1, batch) for i, batch in enumerate(batches)
        )
        cut = data.draw(st.integers(0, len(blob)))
        records, good, _ = decode_records(blob[:cut])
        # good bytes always frame exactly the surviving records
        assert blob[:good] == b"".join(
            encode_record(i + 1, batches[i]) for i in range(len(records))
        )
        # a cut on a record boundary loses nothing before it
        boundaries = []
        off = 0
        for i, batch in enumerate(batches):
            off += len(encode_record(i + 1, batch))
            boundaries.append(off)
        expect_n = sum(1 for b in boundaries if b <= cut)
        assert len(records) == expect_n


class TestJournalPrefixRecovery:
    """Acceptance criterion: arbitrary journal truncation is safe."""

    @pytest.mark.parametrize("name", sorted(SETUPS))
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_recovers_surviving_whole_records(self, name, data, tmp_path_factory):
        program, pops, db, batches = SETUPS[name]()
        d = str(tmp_path_factory.mktemp(f"jp-{name}"))
        with DurableInstance(
            d, program, pops, database=db, checkpoint_every=100
        ) as dur:
            for batch in batches:
                dur.apply(batch)
        journal_path = os.path.join(d, JOURNAL_NAME)
        blob = open(journal_path, "rb").read()
        cut = data.draw(st.integers(0, len(blob)))
        with open(journal_path, "wb") as f:
            f.write(blob[:cut])
        surviving, _, _ = decode_records(blob[:cut])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", JournalWarning)
            with DurableInstance(
                d, program, pops, checkpoint_every=100
            ) as recovered:
                got = fingerprint(recovered.instance)
                assert recovered.seq == len(surviving)
        program2, pops2, db2, _ = SETUPS[name]()
        ref = IncrementalInstance(program2, db2)
        for _seq, muts in surviving:
            ref.apply(muts)
        assert got == fingerprint(ref.instance)

    def test_torn_tail_truncates_with_warning(self, tmp_path):
        program, pops, db, batches = trop_setup()
        d = str(tmp_path)
        with DurableInstance(
            d, program, pops, database=db, checkpoint_every=100
        ) as dur:
            for batch in batches[:2]:
                dur.apply(batch)
        journal_path = os.path.join(d, JOURNAL_NAME)
        with open(journal_path, "ab") as f:
            f.write(b"deadbeef {\"seq\": 3, \"mutations\"")  # torn write
        with pytest.warns(JournalWarning):
            with DurableInstance(
                d, program, pops, checkpoint_every=100
            ) as recovered:
                assert recovered.seq == 2
                assert recovered.stats["journal_replays"] == 2


class TestCrashMatrix:
    """Deterministic DATALOGO_FAULT sites: reopen equals uncrashed."""

    # (site, does the batch survive the crash?)
    MATRIX = [
        ("crash@journal:2", True),    # record fsync'd before the fault
        ("crash@apply:2", True),      # applied + journaled, no checkpoint
        ("corrupt@journal:2", False),  # torn record → truncated on replay
        ("crash@checkpoint:2", True),  # old checkpoint + full journal
        ("crash@truncate:2", True),   # new checkpoint + stale journal
    ]

    @pytest.mark.parametrize("site,survives", MATRIX)
    def test_reopen_equals_uncrashed(self, site, survives, tmp_path):
        program, pops, db, batches = trop_setup()
        crash_dir = str(tmp_path / "crashed")
        ref_dir = str(tmp_path / "reference")
        os.makedirs(crash_dir)
        os.makedirs(ref_dir)
        dur = DurableInstance(
            crash_dir, program, pops, database=db, checkpoint_every=2,
            fault_plan=FaultPlan.parse(site),
        )
        dur.apply(batches[0])
        with pytest.raises(InjectedCrash):
            dur.apply(batches[1])
        # the journal handle is abandoned exactly as a dead process
        # would leave it; recovery happens purely from disk
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", JournalWarning)
            recovered = DurableInstance(
                crash_dir, program, pops, checkpoint_every=2
            )
        program2, pops2, db2, batches2 = trop_setup()
        with DurableInstance(
            ref_dir, program2, pops2, database=db2, checkpoint_every=2
        ) as ref:
            ref.apply(batches2[0])
            if survives:
                ref.apply(batches2[1])
            assert fingerprint(recovered.instance) == fingerprint(ref.instance)
            assert recovered.seq == ref.seq
        assert recovered.stats["recoveries"] == 1
        recovered.close()

    def test_corrupt_tail_warns(self, tmp_path):
        program, pops, db, batches = trop_setup()
        d = str(tmp_path)
        dur = DurableInstance(
            d, program, pops, database=db, checkpoint_every=100,
            fault_plan=FaultPlan.parse("corrupt@journal:1"),
        )
        with pytest.raises(InjectedCrash):
            dur.apply(batches[0])
        with pytest.warns(JournalWarning):
            DurableInstance(d, program, pops, checkpoint_every=100).close()

    def test_crash_then_continue_then_crash_again(self, tmp_path):
        """Recovery is re-entrant: crash, recover, mutate, crash, recover."""
        program, pops, db, batches = trop_setup()
        d = str(tmp_path)
        dur = DurableInstance(
            d, program, pops, database=db, checkpoint_every=2,
            fault_plan=FaultPlan.parse("crash@apply:1"),
        )
        with pytest.raises(InjectedCrash):
            dur.apply(batches[0])
        dur2 = DurableInstance(
            d, program, pops, checkpoint_every=1,
            fault_plan=FaultPlan.parse("crash@checkpoint:2"),
        )
        assert dur2.seq == 1
        with pytest.raises(InjectedCrash):
            dur2.apply(batches[1])
        with DurableInstance(d, program, pops, checkpoint_every=2) as dur3:
            assert dur3.seq == 2
            program2, _pops2, db2, _ = trop_setup()
            ref = IncrementalInstance(program2, db2)
            for batch in batches[:2]:
                ref.apply(batch)
            assert fingerprint(dur3.instance) == fingerprint(ref.instance)


class TestApplyAbort:
    """A journaled batch whose in-memory apply *fails* (rather than
    crashes) must be scrubbed: never replayed on recovery, never left
    half-applied in memory, and never allowed to poison the sequence
    numbering of later acknowledged batches."""

    def test_failed_apply_scrubs_journal_and_rolls_back(
        self, tmp_path, monkeypatch
    ):
        program, pops, db, batches = trop_setup()
        d = str(tmp_path)
        dur = DurableInstance(
            d, program, pops, database=db, checkpoint_every=100
        )
        dur.apply(batches[0])
        good_fp = fingerprint(dur.instance)

        def half_applied_failure(muts):
            # Worst case: the database is mutated, then the maintenance
            # path (e.g. the full re-solve fallback) blows up.
            dur.inc._apply_to_database(muts)
            raise RuntimeError("synthetic non-convergence")

        monkeypatch.setattr(dur.inc, "apply", half_applied_failure)
        with pytest.raises(RuntimeError, match="synthetic"):
            dur.apply(batches[1])
        # The abort rebuilt the live state from disk (discarding the
        # monkeypatched instance) and scrubbed the failed record.
        assert dur.seq == 1
        assert dur.healthy
        assert dur.stats["apply_aborts"] == 1
        assert fingerprint(dur.instance) == good_fp
        # The next acknowledged batch takes the freed sequence number
        # cleanly: the journal stays a monotonic prefix with no
        # duplicate for recovery's monotonicity check to stop at.
        dur.apply(batches[1])
        assert dur.seq == 2
        blob = open(os.path.join(d, JOURNAL_NAME), "rb").read()
        records, _good, anomaly = decode_records(blob)
        assert anomaly is None
        assert [seq for seq, _ in records] == [1, 2]
        live_fp = fingerprint(dur.instance)
        dur.close()
        # Recovery replays exactly the acknowledged batches — the
        # failed batch is gone, the later one is not truncated away.
        with warnings.catch_warnings():
            warnings.simplefilter("error", JournalWarning)
            with DurableInstance(
                d, program, pops, checkpoint_every=100
            ) as recovered:
                assert recovered.seq == 2
                assert recovered.stats["journal_replays"] == 2
                assert fingerprint(recovered.instance) == live_fp

    def test_failed_rollback_marks_unhealthy(self, tmp_path, monkeypatch):
        program, pops, db, batches = trop_setup()
        dur = DurableInstance(
            str(tmp_path), program, pops, database=db, checkpoint_every=100
        )
        dur.apply(batches[0])

        def failing_apply(muts):
            raise RuntimeError("synthetic apply failure")

        def failing_truncate(length):
            raise OSError("synthetic disk failure")

        monkeypatch.setattr(dur.inc, "apply", failing_apply)
        monkeypatch.setattr(dur.journal, "truncate", failing_truncate)
        with pytest.warns(JournalWarning, match="unhealthy"):
            with pytest.raises(RuntimeError, match="apply failure"):
                dur.apply(batches[1])
        assert not dur.healthy
        with pytest.raises(JournalError, match="unhealthy"):
            dur.apply(batches[1])
        with pytest.raises(JournalError, match="unhealthy"):
            dur.checkpoint()
        dur.close()

    def test_reopen_under_wrong_pops_fails_fast(self, tmp_path):
        program, pops, db, _batches = trop_setup()
        d = str(tmp_path)
        DurableInstance(d, program, pops, database=db).close()
        with pytest.raises(JournalError, match="value space"):
            DurableInstance(d, programs.transitive_closure(), BOOL)


class TestCheckpointing:
    def test_checkpoint_every_rotates_journal(self, tmp_path):
        program, pops, db, batches = trop_setup()
        d = str(tmp_path)
        with DurableInstance(
            d, program, pops, database=db, checkpoint_every=2
        ) as dur:
            for batch in batches:
                dur.apply(batch)
            # 4 batches, checkpoint every 2 → ≥ 2 periodic checkpoints
            # (+1 at the initial solve)
            assert dur.stats["checkpoint_writes"] >= 3
            journal_size = os.path.getsize(os.path.join(d, JOURNAL_NAME))
            assert journal_size == 0  # rotated at the last checkpoint
        with DurableInstance(d, program, pops) as recovered:
            assert recovered.stats["journal_replays"] == 0
            assert recovered.seq == len(batches)

    def test_checkpoint_schema_guard(self, tmp_path):
        write_checkpoint(str(tmp_path), {"schema": "bogus/9", "seq": 0})
        with pytest.raises(JournalError, match="schema"):
            load_checkpoint(str(tmp_path))

    def test_missing_checkpoint_is_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path)) is None

    def test_stats_snapshot_has_gated_counters(self, tmp_path):
        program, pops, db, batches = trop_setup()
        with DurableInstance(
            str(tmp_path), program, pops, database=db
        ) as dur:
            snap = dur.stats_snapshot()
            for key in (
                "incremental_fallbacks",
                "journal_replays",
                "checkpoint_writes",
                "journal_records",
                "recoveries",
            ):
                assert key in snap, key


class TestMutationJournalUnit:
    def test_append_replay_reset(self, tmp_path):
        path = str(tmp_path / "j.log")
        j = MutationJournal(path)
        j.append(1, [Mutation("insert", "E", ("a",), 1.0)])
        j.append(2, [Mutation("delete", "E", ("a",), None)])
        assert [seq for seq, _ in j.replay()] == [1, 2]
        j.reset()
        assert j.replay() == []
        j.close()
