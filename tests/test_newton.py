"""Newton's method over idempotent semirings (the §1/§8 alternative)."""

from __future__ import annotations

import pytest

from repro import programs, workloads
from repro.core import (
    Database,
    Monomial,
    NewtonError,
    Polynomial,
    PolynomialSystem,
    ground_program,
    jacobian,
    newton_fixpoint,
    partial_derivative,
)
from repro.semirings import BOOL, BOTTLENECK, NAT, TROP, VITERBI


class TestDerivatives:
    def test_partial_of_linear(self):
        # f = 2 ⊗ x ⊕ 5 over Trop+: ∂f/∂x = 2 everywhere.
        f = Polynomial((
            Monomial.make(2.0, {"x": 1}),
            Monomial.make(5.0, {}),
        ))
        assert partial_derivative(TROP, f, "x", {"x": 1.0}) == 2.0
        assert partial_derivative(TROP, f, "y", {"x": 1.0}) == TROP.zero

    def test_partial_of_quadratic(self):
        # f = x² over B at x = 1: ∂f/∂x = x (idempotent collapse of 2x).
        f = Polynomial((Monomial.make(True, {"x": 2}),))
        assert partial_derivative(BOOL, f, "x", {"x": True}) is True
        assert partial_derivative(BOOL, f, "x", {"x": False}) is False

    def test_mixed_monomial(self):
        # f = x·y over Trop+: ∂f/∂x at y = 3 is 3.
        f = Polynomial((Monomial.make(0.0, {"x": 1, "y": 1}),))
        assert partial_derivative(TROP, f, "x", {"y": 3.0}) == 3.0

    def test_jacobian_shape(self):
        system = PolynomialSystem(
            pops=TROP,
            polynomials={
                "x": Polynomial((Monomial.make(1.0, {"y": 1}),)),
                "y": Polynomial((Monomial.make(2.0, {}),)),
            },
        )
        jac = jacobian(system, {"x": 0.0, "y": 0.0})
        assert jac == [[TROP.zero, 1.0], [TROP.zero, TROP.zero]]


class TestNewtonCorrectness:
    def _assert_matches_kleene(self, system, p=0):
        newton = newton_fixpoint(system, stability_p=p)
        kleene = system.kleene()
        for var in system.order:
            assert system.pops.eq(newton.value[var], kleene.value[var]), var
        return newton, kleene

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_quadratic_tc_over_bool(self, seed):
        dag = workloads.random_dag(7, 0.3, seed=seed)
        db = Database(pops=BOOL, relations={"E": {e: True for e in dag}})
        system = ground_program(programs.quadratic_transitive_closure(), db)
        self._assert_matches_kleene(system)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_apsp_over_trop(self, seed):
        edges = workloads.random_weighted_digraph(6, 0.35, seed=seed)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        system = ground_program(programs.apsp(), db)
        self._assert_matches_kleene(system)

    def test_widest_path_over_bottleneck(self):
        edges = {("a", "b"): 3.0, ("b", "c"): 5.0, ("a", "c"): 2.0}
        db = Database(pops=BOTTLENECK, relations={"E": edges})
        system = ground_program(programs.apsp(), db)
        newton, _ = self._assert_matches_kleene(system)
        assert newton.value[("T", ("a", "c"))] == 3.0  # via b: min(3,5)

    def test_viterbi_paths(self):
        edges = {("a", "b"): 0.9, ("b", "c"): 0.9, ("a", "c"): 0.5}
        db = Database(pops=VITERBI, relations={"E": edges})
        system = ground_program(programs.apsp(), db)
        newton, _ = self._assert_matches_kleene(system)
        assert newton.value[("T", ("a", "c"))] == pytest.approx(0.81)

    def test_fewer_outer_iterations_on_long_chain(self):
        """The paper's trade-off: Newton needs far fewer iterations
        than Kleene, paying a closure per step."""
        edges = workloads.line_edges(16)
        db = Database(pops=TROP, relations={"E": dict(edges)})
        system = ground_program(programs.sssp(0), db)
        newton = newton_fixpoint(system)
        kleene = system.kleene()
        assert newton.iterations < kleene.steps
        assert newton.closure_calls == newton.iterations

    def test_rejects_non_idempotent(self):
        system = PolynomialSystem(
            pops=NAT,
            polynomials={"x": Polynomial((Monomial.make(1, {}),))},
        )
        with pytest.raises(NewtonError):
            newton_fixpoint(system)

    def test_trace_capture(self):
        db = Database(pops=BOOL, relations={"E": {("a", "b"): True}})
        system = ground_program(programs.transitive_closure(), db)
        result = newton_fixpoint(system, capture_trace=True)
        assert len(result.trace) == result.iterations + 1
