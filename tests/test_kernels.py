"""Compiled join kernels, delta-driven activation, parallel strata.

Covers the compiled evaluation pipeline end to end:

* compiled == interpreted fixpoints on the paper's workloads and on
  hypothesis-generated programs with cyclic, mutually recursive and
  conditional bodies, across classic-Boolean / tropical / THREE /
  lifted-reals value spaces, for both engines and all schedules;
* kernel caching: one compile per (rule, body[, variant]) per
  evaluator, every later fixpoint iteration a cache hit
  (``JoinStats.kernel_cache_hits``);
* delta-driven rule activation (``EvalStats.rules_skipped``): naive
  bodies with unchanged inputs reuse their cached contribution,
  semi-naïve variants with empty delta stores are dropped outright —
  with identical fixpoints;
* ``schedule="parallel"``: independent condensation branches evaluate
  concurrently with deterministic reports and identical fixpoints;
* the ``engine=`` knob's validation and the grounded/hybrid wiring.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import programs, workloads
from repro.core import Database, HybridEvaluator, ThresholdRule, solve
from repro.core.ast import BoolAtom, Compare, Constant, terms, var
from repro.core.grounding import ground_program
from repro.core.naive import NaiveEvaluator
from repro.core.rules import (
    Indicator,
    Program,
    RelAtom,
    Rule,
    SumProduct,
)
from repro.core.scheduler import scheduled_fixpoint
from repro.semirings import BOOL, LIFTED_REAL, REAL_PLUS, THREE, TROP

ENGINES = ("compiled", "interpreted")


def _line_db(n=10, pops=TROP):
    return Database(pops=pops, relations={"E": dict(workloads.line_edges(n))})


# ---------------------------------------------------------------------------
# Compiled == interpreted on the paper's workloads.
# ---------------------------------------------------------------------------


class TestCompiledDifferentials:
    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    @pytest.mark.parametrize("schedule", ["monolithic", "scc", "parallel"])
    def test_sssp_line(self, method, schedule):
        db = _line_db(12)
        compiled = solve(
            programs.sssp(0), db, method=method, schedule=schedule,
            engine="compiled",
        )
        interpreted = solve(
            programs.sssp(0), db, method=method, schedule=schedule,
            engine="interpreted",
        )
        assert compiled.instance.equals(interpreted.instance)

    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_layered_sssp(self, method):
        db = _line_db(10)
        prog = programs.layered_sssp(0)
        compiled = solve(prog, db, method=method, engine="compiled")
        interpreted = solve(prog, db, method=method, engine="interpreted")
        assert compiled.instance.equals(interpreted.instance)

    def test_quadratic_tc_nonlinear_variants(self):
        # Two IDB occurrences per body: exercises every delta-variant
        # store assignment (new / delta / old) in the compiled path.
        dag = workloads.random_dag(10, 0.25, seed=8)
        db = Database(pops=BOOL, relations={"E": {e: True for e in dag}})
        prog = programs.quadratic_transitive_closure()
        compiled = solve(prog, db, method="seminaive", engine="compiled")
        interpreted = solve(prog, db, method="seminaive", engine="interpreted")
        assert compiled.instance.equals(interpreted.instance)

    def test_grounded_engine_knob(self):
        db = _line_db(6)
        compiled = ground_program(programs.sssp(0), db, engine="compiled")
        interpreted = ground_program(
            programs.sssp(0), db, engine="interpreted"
        )
        a = compiled.kleene().value
        b = interpreted.kleene().value
        assert set(a) == set(b)
        for key in a:
            assert TROP.eq(a[key], b[key])

    def test_hybrid_engine_knob(self):
        # Example 4.3-style: a threshold IDB feeding back into the
        # POPS rules through a condition.
        def build(engine):
            rules = [
                Rule(
                    "T",
                    terms(["X"]),
                    (
                        SumProduct((RelAtom("W", terms(["X"])),)),
                        SumProduct(
                            (RelAtom("T", terms(["Z"])),
                             RelAtom("E", terms(["Z", "X"]))),
                        ),
                    ),
                ),
            ]
            prog = Program(rules=rules, edbs={"W": 1, "E": 2})
            db = Database(
                pops=REAL_PLUS,
                relations={
                    "W": {(0,): 0.4, (1,): 0.2},
                    "E": {(0, 1): 0.5, (1, 2): 0.5, (2, 3): 0.5},
                },
            )
            threshold = ThresholdRule(
                head_relation="Big",
                head_args=terms(["X"]),
                body=SumProduct((RelAtom("T", terms(["X"])),)),
                predicate=lambda v: v > 0.3,
            )
            hybrid = HybridEvaluator(
                prog, [threshold], db, engine=engine, max_iterations=50
            )
            result = hybrid.run()
            return result.instance, hybrid.bool_facts("Big")

        inst_c, facts_c = build("compiled")
        inst_i, facts_i = build("interpreted")
        assert inst_c.equals(inst_i)
        assert facts_c == facts_i

    def test_engine_validation(self):
        db = _line_db(4)
        with pytest.raises(ValueError):
            solve(programs.sssp(0), db, engine="mystery")
        with pytest.raises(ValueError):
            solve(programs.sssp(0), db, plan="naive", engine="compiled")
        # plan="naive" + engine="auto" falls back to interpreted.
        result = solve(programs.sssp(0), db, plan="naive")
        assert result.stats["kernel_cache_hits"] == 0


# ---------------------------------------------------------------------------
# Kernel caching and delta-driven activation counters.
# ---------------------------------------------------------------------------


class TestKernelCounters:
    def test_kernel_cache_hits_across_iterations(self):
        db = _line_db(10)
        result = solve(programs.sssp(0), db, schedule="monolithic")
        # The recursive rule re-applies every iteration; each
        # application after the first is a cache hit.
        assert result.stats["kernel_cache_hits"] > 0
        assert (
            result.stats["kernel_cache_hits"]
            + result.stats["rules_skipped"]
            >= result.stats["iterations"] - 1
        )
        interpreted = solve(
            programs.sssp(0), db, schedule="monolithic", engine="interpreted"
        )
        assert interpreted.stats["kernel_cache_hits"] == 0
        assert interpreted.stats["rules_skipped"] == 0

    def test_naive_rules_skipped_on_unchanged_inputs(self):
        # The source bracket body of SSSP reads no IDB at all: after
        # iteration 1 its contribution cannot change, so every later
        # iteration skips it.
        db = _line_db(10)
        result = solve(programs.sssp(0), db, schedule="monolithic")
        assert result.stats["rules_skipped"] > 0
        baseline = solve(
            programs.sssp(0), db, schedule="monolithic", engine="interpreted"
        )
        assert result.instance.equals(baseline.instance)
        # Skipping reduces applications, never increases them.
        assert (
            result.stats["rule_applications"]
            < baseline.stats["rule_applications"]
        )

    def test_seminaive_skips_empty_delta_variants(self):
        # Two recursive predicates over disjoint edge relations: once
        # one converges, its delta is empty while the other still
        # iterates — those variants are dropped outright.
        rules = [
            Rule(
                "P",
                terms(["X"]),
                (
                    SumProduct((RelAtom("A", terms(["X"])),)),
                    SumProduct(
                        (RelAtom("P", terms(["Z"])),
                         RelAtom("E1", terms(["Z", "X"]))),
                    ),
                ),
            ),
            Rule(
                "Q",
                terms(["X"]),
                (
                    SumProduct((RelAtom("A", terms(["X"])),)),
                    SumProduct(
                        (RelAtom("Q", terms(["Z"])),
                         RelAtom("E2", terms(["Z", "X"]))),
                    ),
                ),
            ),
        ]
        prog = Program(rules=rules, edbs={"A": 1, "E1": 2, "E2": 2})
        db = Database(
            pops=TROP,
            relations={
                "A": {(0,): 0.0},
                "E1": {(0, 1): 1.0},  # short chain: P converges fast
                "E2": dict(workloads.line_edges(10)),  # long chain for Q
            },
        )
        compiled = solve(
            prog, db, method="seminaive", schedule="monolithic",
            engine="compiled",
        )
        interpreted = solve(
            prog, db, method="seminaive", schedule="monolithic",
            engine="interpreted",
        )
        assert compiled.instance.equals(interpreted.instance)
        assert compiled.stats["rules_skipped"] > 0
        assert (
            compiled.stats["rule_applications"]
            < interpreted.stats["rule_applications"]
        )

    def test_bool_guard_refresh_reuses_version_counters(self):
        # A Boolean condition atom whose store never changes: the
        # per-iteration refresh must reuse the cached index and count
        # the skip instead of re-validating by materialized size.
        rules = [
            Rule(
                "R",
                terms(["X"]),
                (
                    SumProduct(
                        (RelAtom("A", terms(["X"])),),
                    ),
                    SumProduct(
                        (RelAtom("R", terms(["Z"])),
                         RelAtom("E", terms(["Z", "X"]))),
                        condition=BoolAtom("Ok", terms(["X"])),
                    ),
                ),
            ),
        ]
        prog = Program(
            rules=rules, edbs={"A": 1, "E": 2}, bool_edbs={"Ok": 1}
        )
        db = Database(
            pops=TROP,
            relations={
                "A": {(0,): 0.0},
                "E": dict(workloads.line_edges(8)),
            },
            bool_relations={"Ok": {(i,) for i in range(9)}},
        )
        compiled = solve(prog, db, schedule="monolithic", engine="compiled")
        interpreted = solve(
            prog, db, schedule="monolithic", engine="interpreted"
        )
        assert compiled.instance.equals(interpreted.instance)
        assert compiled.stats["rebuild_skips"] > 0

    def test_hybrid_threshold_guard_reuse(self):
        # The hybrid evaluator's threshold bodies previously rebuilt
        # ephemeral indexes every iteration; the compiled path caches
        # guards and refreshes through the base's change counters.
        def run(engine):
            prog = Program(
                rules=[
                    Rule(
                        "T",
                        terms(["X"]),
                        (
                            SumProduct((RelAtom("W", terms(["X"])),)),
                            SumProduct(
                                (RelAtom("T", terms(["Z"])),
                                 RelAtom("E", terms(["Z", "X"]))),
                            ),
                        ),
                    )
                ],
                edbs={"W": 1, "E": 2},
            )
            db = Database(
                pops=REAL_PLUS,
                relations={
                    "W": {(0,): 0.3},
                    "E": {(0, 1): 0.9, (1, 2): 0.9},
                },
            )
            hybrid = HybridEvaluator(
                prog,
                [
                    ThresholdRule(
                        "Big",
                        terms(["X"]),
                        SumProduct((RelAtom("T", terms(["X"])),)),
                        predicate=lambda v: v > 0.2,
                    )
                ],
                db,
                engine=engine,
                max_iterations=50,
            )
            result = hybrid.run()
            return result.instance, hybrid.bool_facts("Big")

        inst_c, facts_c = run("compiled")
        inst_i, facts_i = run("interpreted")
        assert inst_c.equals(inst_i)
        assert facts_c == facts_i


# ---------------------------------------------------------------------------
# Parallel stratum execution.
# ---------------------------------------------------------------------------


def _wide_program():
    """Four independent recursive chains plus a joint output layer."""
    rules = []
    for i in range(4):
        rules.append(
            Rule(
                f"P{i}",
                terms(["X"]),
                (
                    SumProduct((RelAtom("A", terms(["X"])),)),
                    SumProduct(
                        (RelAtom(f"P{i}", terms(["Z"])),
                         RelAtom("E", terms(["Z", "X"]))),
                    ),
                ),
            )
        )
    rules.append(
        Rule(
            "Out",
            terms(["X"]),
            tuple(
                SumProduct((RelAtom(f"P{i}", terms(["X"])),))
                for i in range(4)
            ),
        )
    )
    return Program(rules=rules, edbs={"A": 1, "E": 2})


class TestParallelSchedule:
    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_parallel_equals_monolithic(self, method):
        prog = _wide_program()
        db = Database(
            pops=TROP,
            relations={
                "A": {(0,): 0.0},
                "E": dict(workloads.line_edges(8)),
            },
        )
        par = solve(prog, db, method=method, schedule="parallel")
        mono = solve(prog, db, method=method, schedule="monolithic")
        scc = solve(prog, db, method=method, schedule="scc")
        assert par.instance.equals(mono.instance)
        assert scc.instance.equals(mono.instance)
        assert par.stats["strata"] == scc.stats["strata"]
        assert par.stats["parallel_workers"] >= 1
        # Reports keep the deterministic condensation order.
        assert [r.relations for r in par.strata] == [
            r.relations for r in scc.strata
        ]

    def test_parallel_worker_isolation_counters(self):
        prog = _wide_program()
        db = Database(
            pops=TROP,
            relations={"A": {(0,): 0.0}, "E": dict(workloads.line_edges(6))},
        )
        par = scheduled_fixpoint(prog, db, parallel=True, max_workers=4)
        seq = scheduled_fixpoint(prog, db)
        assert par.instance.equals(seq.instance)
        # Total fixpoint progress is schedule-independent.
        assert par.stats["iterations"] == seq.stats["iterations"]
        assert (
            par.stats["rule_applications"] == seq.stats["rule_applications"]
        )

    def test_parallel_trace_capture_rejected(self):
        db = _line_db(4)
        with pytest.raises(ValueError):
            solve(programs.sssp(0), db, schedule="parallel", capture_trace=True)


# ---------------------------------------------------------------------------
# Hypothesis: compiled == interpreted over random conditional programs.
# ---------------------------------------------------------------------------

_PREDS = ["P0", "P1", "P2", "P3"]

#: Body spec: ("edb",) | ("ind", c) | ("cond", c) | ("copy", j) | ("step", j).
_body_spec = st.one_of(
    st.just(("edb",)),
    st.tuples(st.just("ind"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("cond"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("copy"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("step"), st.integers(min_value=0, max_value=3)),
)

_program_spec = st.lists(
    st.lists(_body_spec, min_size=1, max_size=2),
    min_size=1,
    max_size=4,
)


def _build_program(spec, acyclic: bool) -> Program:
    rules = []
    for i, bodies in enumerate(spec):
        head = _PREDS[i]
        sum_products = []
        for body in bodies:
            kind = body[0]
            if kind == "edb":
                sum_products.append(SumProduct((RelAtom("A", terms(["X"])),)))
            elif kind == "ind":
                sum_products.append(
                    SumProduct(
                        (Indicator(Compare("==", var("X"), Constant(body[1]))),)
                    )
                )
            elif kind == "cond":
                # A conditional body: the filter rides the pushdown and
                # compiled-filter paths.
                sum_products.append(
                    SumProduct(
                        (RelAtom("A", terms(["X"])),),
                        condition=Compare("!=", var("X"), Constant(body[1])),
                    )
                )
            else:
                j = body[1] % len(spec)
                if acyclic and j >= i:
                    sum_products.append(
                        SumProduct((RelAtom("A", terms(["X"])),))
                    )
                elif kind == "copy":
                    sum_products.append(
                        SumProduct((RelAtom(_PREDS[j], terms(["X"])),))
                    )
                else:
                    sum_products.append(
                        SumProduct(
                            (
                                RelAtom(_PREDS[j], terms(["Z"])),
                                RelAtom("E", terms(["Z", "X"])),
                            )
                        )
                    )
        rules.append(Rule(head, terms(["X"]), tuple(sum_products)))
    return Program(rules=rules, edbs={"A": 1, "E": 2})


def _database(pops, values):
    keys = [(0,), (1,), (2,)]
    return Database(
        pops=pops,
        relations={
            "A": dict(zip(keys, values)),
            "E": {(0, 1): values[0], (1, 2): values[1], (2, 3): values[2]},
        },
    )


class TestCompiledInvariance:
    @settings(max_examples=50, deadline=None)
    @given(_program_spec)
    def test_idempotent_semirings_with_cycles(self, spec):
        for pops, values in (
            (BOOL, [True, True, True]),
            (TROP, [1.0, 2.0, 4.0]),
            (THREE, [1, 0, 1]),
        ):
            prog = _build_program(spec, acyclic=False)
            db = _database(pops, values)
            interpreted = solve(
                prog, db, engine="interpreted", max_iterations=400
            )
            compiled = solve(prog, db, engine="compiled", max_iterations=400)
            assert compiled.instance.equals(interpreted.instance), pops.name
            if getattr(pops, "supports_minus", False):
                semi = solve(
                    prog,
                    db,
                    method="seminaive",
                    engine="compiled",
                    max_iterations=400,
                )
                assert semi.instance.equals(interpreted.instance), pops.name

    @settings(max_examples=30, deadline=None)
    @given(_program_spec)
    def test_lifted_reals_acyclic(self, spec):
        prog = _build_program(spec, acyclic=True)
        db = _database(LIFTED_REAL, [1.0, 2.0, 4.0])
        interpreted = solve(prog, db, engine="interpreted", max_iterations=400)
        compiled = solve(prog, db, engine="compiled", max_iterations=400)
        assert compiled.instance.equals(interpreted.instance)

    @settings(max_examples=25, deadline=None)
    @given(_program_spec)
    def test_parallel_schedule_invariance(self, spec):
        prog = _build_program(spec, acyclic=False)
        db = _database(TROP, [1.0, 2.0, 4.0])
        mono = solve(
            prog, db, schedule="monolithic", max_iterations=400
        )
        par = solve(prog, db, schedule="parallel", max_iterations=400)
        assert par.instance.equals(mono.instance)


class TestTotalHeadsCompiled:
    def test_total_heads_matches_interpreted(self):
        # THREE is not naturally ordered: heads totalize over the whole
        # ground-atom space, and the cached-contribution merge must
        # interact with the pre-seeded zeros exactly like recomputation.
        rules = [
            Rule(
                "R",
                terms(["X"]),
                (
                    SumProduct((RelAtom("A", terms(["X"])),)),
                    SumProduct(
                        (RelAtom("R", terms(["Z"])),
                         RelAtom("E", terms(["Z", "X"]))),
                    ),
                ),
            ),
        ]
        prog = Program(rules=rules, edbs={"A": 1, "E": 2})
        db = Database(
            pops=THREE,
            relations={
                "A": {(0,): 1, (1,): 0},
                "E": {(0, 1): 1, (1, 2): 1, (2, 3): 0},
            },
        )
        compiled = NaiveEvaluator(prog, db, engine="compiled").run()
        interpreted = NaiveEvaluator(prog, db, engine="interpreted").run()
        assert compiled.instance.equals(interpreted.instance)
        assert compiled.steps == interpreted.steps
