"""The batched columnar kernel backend (``engine="batched"``).

Covers the whole-batch pipeline end to end:

* batched == codegen == compiled == interpreted fixpoints —
  *byte-identical*, not just ``⊕``-equal — on the paper's workloads
  and on hypothesis-generated programs with cyclic, mutually recursive
  and conditional bodies, across Boolean / tropical / THREE /
  lifted-reals value spaces, for both fixpoint engines and all
  schedules;
* exact join-counter parity with the codegen backend (same Plan IR,
  same per-candidate event totals), modulo the counters that describe
  engine shape rather than work done (``batch_joins``/``batch_rows``/
  ``vector_filter_prunes`` exist only here, ``codegen_kernels`` only
  there, and ``index_builds`` may be *lower* because mask tables build
  lazily);
* the batch counters themselves, kernel caching, grounded/hybrid
  wiring, and the centralized ``engine=`` validation;
* the numpy fast path (grouped ⊕-reduction) and its clean stdlib
  fallback when numpy is absent or values are rich.

Set ``DATALOGO_ENGINE`` to re-run the differentials with another
engine as the subject (the CI engine matrix does this).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import programs, workloads
from repro.core import (
    Database,
    HybridEvaluator,
    ThresholdRule,
    VALID_ENGINES,
    solve,
)
from repro.core import batched as batched_mod
from repro.core.ast import Compare, Constant, terms, var
from repro.core.batched import BatchedKernel
from repro.core.grounding import ground_program
from repro.core.naive import NaiveEvaluator
from repro.core.rules import (
    Indicator,
    Program,
    RelAtom,
    Rule,
    SumProduct,
)
from repro.semirings import BOOL, LIFTED_REAL, REAL_PLUS, THREE, TROP
from repro.semirings.base import FunctionRegistry

#: The engine under test; the CI engine matrix overrides this.
ENGINE = os.environ.get("DATALOGO_ENGINE", "batched")

#: Counters that describe engine *shape* rather than join work — every
#: other counter must agree exactly between batched and codegen.
#: ``batch_*``/``vector_filter_prunes`` exist only here and
#: ``codegen_kernels`` only there; index/cache bookkeeping differs
#: because mask tables build lazily per delta batch.
SHAPE_COUNTERS = frozenset(
    {
        "batch_joins",
        "batch_rows",
        "vector_filter_prunes",
        "codegen_kernels",
        "index_builds",
        "index_hits",
        "index_reuses",
        "kernel_cache_hits",
        "kernel_cache_misses",
    }
)


def _bytes_of(instance) -> str:
    """A byte-exact rendering (repr distinguishes 0.0 from -0.0)."""
    return "|".join(
        "%s:%s"
        % (
            rel,
            sorted(
                (repr(k), repr(v))
                for k, v in instance.support(rel).items()
            ),
        )
        for rel in sorted(instance.relations())
    )


def _counters(result) -> dict:
    return {
        k: v
        for k, v in result.stats.items()
        if k not in SHAPE_COUNTERS and isinstance(v, int)
    }


def _line_db(n=10, pops=TROP):
    return Database(pops=pops, relations={"E": dict(workloads.line_edges(n))})


def _weighted_db(n=12, p=0.3, seed=7):
    edges = workloads.random_weighted_digraph(n, p, seed=seed)
    return Database(pops=TROP, relations={"E": dict(edges)})


# ---------------------------------------------------------------------------
# batched == codegen == compiled == interpreted, byte for byte.
# ---------------------------------------------------------------------------


class TestBatchedDifferentials:
    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    @pytest.mark.parametrize("schedule", ["monolithic", "scc", "parallel"])
    def test_apsp_all_schedules(self, method, schedule):
        db = _weighted_db()
        results = {
            engine: solve(
                programs.apsp(), db, method=method, schedule=schedule,
                engine=engine,
            )
            for engine in ("interpreted", "compiled", "codegen", ENGINE)
        }
        subject = results[ENGINE]
        for other in ("interpreted", "compiled", "codegen"):
            assert subject.instance.equals(results[other].instance)
            assert _bytes_of(subject.instance) == _bytes_of(
                results[other].instance
            )
            assert subject.steps == results[other].steps

    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_sssp_line(self, method):
        db = _line_db(12)
        subject = solve(programs.sssp(0), db, method=method, engine=ENGINE)
        codegen = solve(programs.sssp(0), db, method=method, engine="codegen")
        assert _bytes_of(subject.instance) == _bytes_of(codegen.instance)

    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_layered_sssp_mutual_recursion(self, method):
        db = _line_db(10)
        prog = programs.layered_sssp(0)
        subject = solve(prog, db, method=method, engine=ENGINE)
        interpreted = solve(prog, db, method=method, engine="interpreted")
        assert subject.instance.equals(interpreted.instance)
        assert _bytes_of(subject.instance) == _bytes_of(interpreted.instance)

    def test_quadratic_tc_nonlinear_variants(self):
        # Two IDB occurrences per body: every Eq. 64 delta-variant
        # store assignment runs through the columnar pipeline.
        dag = workloads.random_dag(10, 0.25, seed=8)
        db = Database(pops=BOOL, relations={"E": {e: True for e in dag}})
        prog = programs.quadratic_transitive_closure()
        subject = solve(prog, db, method="seminaive", engine=ENGINE)
        interpreted = solve(prog, db, method="seminaive", engine="interpreted")
        assert subject.instance.equals(interpreted.instance)

    def test_cyclic_tc(self):
        cyc = workloads.cycle_edges(9)
        db = Database(pops=BOOL, relations={"E": {e: True for e in cyc}})
        prog = programs.transitive_closure()
        for method in ("naive", "seminaive"):
            subject = solve(prog, db, method=method, engine=ENGINE)
            codegen = solve(prog, db, method=method, engine="codegen")
            assert _bytes_of(subject.instance) == _bytes_of(codegen.instance)

    def test_bill_of_material_lifted(self):
        edges, costs = workloads.fig_2b_bom()
        db = Database(
            pops=LIFTED_REAL,
            relations={"C": {(k,): v for k, v in costs.items()}},
            bool_relations={"E": set(edges)},
        )
        prog = programs.bill_of_material()
        subject = solve(prog, db, engine=ENGINE)
        interpreted = solve(prog, db, engine="interpreted")
        assert _bytes_of(subject.instance) == _bytes_of(interpreted.instance)

    def test_key_as_value_functions(self):
        registry = FunctionRegistry()
        registry.register("key_to_trop", float)
        db = Database(
            pops=TROP,
            bool_relations={
                "Length": {("a", "b", 3), ("a", "b", 7), ("a", "c", 2)}
            },
        )
        prog = programs.shortest_length_from_bool()
        subject = solve(prog, db, engine=ENGINE, functions=registry)
        codegen = solve(prog, db, engine="codegen", functions=registry)
        assert _bytes_of(subject.instance) == _bytes_of(codegen.instance)

    def test_prefix_sum_conditions(self):
        # Comparison-laden bodies: pushdown filters become vectorized
        # boolean masks (and the plan's trailing filters keep this
        # shape off the fused fast path).
        n = 6
        db = Database(
            pops=REAL_PLUS,
            relations={"V": {(i,): float(i + 1) for i in range(n)}},
            bool_relations={"Idx": {(i,) for i in range(n)}},
        )
        prog = programs.prefix_sum(length=n)
        subject = solve(prog, db, engine=ENGINE)
        codegen = solve(prog, db, engine="codegen")
        assert _bytes_of(subject.instance) == _bytes_of(codegen.instance)

    def test_total_heads_three(self):
        # THREE is not naturally ordered: heads totalize over the whole
        # ground-atom space; batched accumulation must interact with
        # the pre-seeded zeros exactly like the other backends.
        rules = [
            Rule(
                "R",
                terms(["X"]),
                (
                    SumProduct((RelAtom("A", terms(["X"])),)),
                    SumProduct(
                        (RelAtom("R", terms(["Z"])),
                         RelAtom("E", terms(["Z", "X"]))),
                    ),
                ),
            ),
        ]
        prog = Program(rules=rules, edbs={"A": 1, "E": 2})
        db = Database(
            pops=THREE,
            relations={
                "A": {(0,): 1, (1,): 0},
                "E": {(0, 1): 1, (1, 2): 1, (2, 3): 0},
            },
        )
        subject = NaiveEvaluator(prog, db, engine=ENGINE).run()
        interpreted = NaiveEvaluator(prog, db, engine="interpreted").run()
        assert subject.instance.equals(interpreted.instance)
        assert subject.steps == interpreted.steps


# ---------------------------------------------------------------------------
# Exact counter parity with codegen, and the batch counters themselves.
# ---------------------------------------------------------------------------


class TestBatchedCounters:
    @pytest.mark.parametrize("method", ["naive", "seminaive"])
    def test_counter_parity_with_codegen(self, method):
        db = _weighted_db()
        subject = solve(
            programs.apsp(), db, method=method, schedule="monolithic",
            engine="batched",
        )
        codegen = solve(
            programs.apsp(), db, method=method, schedule="monolithic",
            engine="codegen",
        )
        assert _counters(subject) == _counters(codegen)

    def test_counter_parity_sssp(self):
        db = _line_db(12)
        subject = solve(
            programs.sssp(0), db, schedule="monolithic", engine="batched"
        )
        codegen = solve(
            programs.sssp(0), db, schedule="monolithic", engine="codegen"
        )
        assert _counters(subject) == _counters(codegen)

    def test_batch_counters_populated(self):
        db = _weighted_db()
        result = solve(programs.apsp(), db, method="seminaive",
                       engine="batched")
        assert result.stats["batch_joins"] > 0
        assert result.stats["batch_rows"] > 0
        # One whole-batch join invocation covers many probed rows.
        assert result.stats["batch_rows"] > result.stats["batch_joins"]
        # The batched backend never generates source...
        assert result.stats["codegen_kernels"] == 0
        # ...but caches its kernels across iterations like codegen.
        assert result.stats["kernel_cache_hits"] > 0

    def test_vectorized_filter_prunes(self):
        # A conditioned body: rows dropped by the boolean mask count
        # both as pushdown prunes (parity) and as vector prunes.
        rules = [
            Rule(
                "T",
                terms(["X", "Y"]),
                (
                    SumProduct(
                        (RelAtom("E", terms(["X", "Y"])),),
                        condition=Compare("!=", var("X"), Constant(0)),
                    ),
                ),
            ),
        ]
        prog = Program(rules=rules, edbs={"E": 2})
        db = _line_db(6)
        result = solve(prog, db, engine="batched")
        assert result.stats["vector_filter_prunes"] > 0
        assert (
            result.stats["pushdown_prunes"]
            == result.stats["vector_filter_prunes"]
        )

    def test_other_engines_have_no_batch_counters(self):
        db = _line_db(8)
        for engine in ("compiled", "codegen", "interpreted"):
            result = solve(programs.sssp(0), db, engine=engine)
            assert result.stats["batch_joins"] == 0
            assert result.stats["batch_rows"] == 0


# ---------------------------------------------------------------------------
# Wiring: grounding, hybrid, CLI-level validation.
# ---------------------------------------------------------------------------


class TestBatchedWiring:
    def test_grounded_engine_knob(self):
        db = _line_db(6)
        subject = ground_program(programs.sssp(0), db, engine=ENGINE)
        interpreted = ground_program(
            programs.sssp(0), db, engine="interpreted"
        )
        a = subject.kleene().value
        b = interpreted.kleene().value
        assert set(a) == set(b)
        for key in a:
            assert TROP.eq(a[key], b[key])

    def test_hybrid_engine_knob(self):
        def build(engine):
            rules = [
                Rule(
                    "T",
                    terms(["X"]),
                    (
                        SumProduct((RelAtom("W", terms(["X"])),)),
                        SumProduct(
                            (RelAtom("T", terms(["Z"])),
                             RelAtom("E", terms(["Z", "X"]))),
                        ),
                    ),
                ),
            ]
            prog = Program(rules=rules, edbs={"W": 1, "E": 2})
            db = Database(
                pops=REAL_PLUS,
                relations={
                    "W": {(0,): 0.4, (1,): 0.2},
                    "E": {(0, 1): 0.5, (1, 2): 0.5, (2, 3): 0.5},
                },
            )
            threshold = ThresholdRule(
                head_relation="Big",
                head_args=terms(["X"]),
                body=SumProduct((RelAtom("T", terms(["X"])),)),
                predicate=lambda v: v > 0.3,
            )
            hybrid = HybridEvaluator(
                prog, [threshold], db, engine=engine, max_iterations=50
            )
            result = hybrid.run()
            return result.instance, hybrid.bool_facts("Big")

        inst_b, facts_b = build(ENGINE)
        inst_i, facts_i = build("interpreted")
        assert inst_b.equals(inst_i)
        assert facts_b == facts_i

    def test_engine_validation_lists_choices(self):
        db = _line_db(4)
        with pytest.raises(ValueError) as excinfo:
            solve(programs.sssp(0), db, engine="bogus")
        message = str(excinfo.value)
        for engine in VALID_ENGINES:
            assert engine in message
        # The knob conflict (non-indexed plan) is still rejected.
        with pytest.raises(ValueError):
            solve(programs.sssp(0), db, plan="naive", engine="batched")

    def test_valid_engines_is_single_source(self):
        # cli.py and engine.py both consume this tuple; the batched
        # backend must be registered exactly once.
        assert "batched" in VALID_ENGINES
        assert len(VALID_ENGINES) == len(set(VALID_ENGINES))
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["run", "p.dl", "--pops", "trop", "--edb", "d.json",
             "--engine", "batched"]
        )
        assert args.engine == "batched"
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["run", "p.dl", "--pops", "trop", "--edb", "d.json",
                 "--engine", "bogus"]
            )


# ---------------------------------------------------------------------------
# The numpy fast path and its stdlib fallback.
# ---------------------------------------------------------------------------


class TestNumpyFastPath:
    def _solve_apsp(self):
        db = _weighted_db(14, 0.35, seed=11)
        return solve(programs.apsp(), db, method="seminaive",
                     engine="batched")

    def test_numpy_absent_fallback(self, monkeypatch):
        # Simulate an environment without numpy: the runtime check in
        # _numpy_reduce consults the module global on every leaf.
        monkeypatch.setattr(batched_mod, "_np", None)
        monkeypatch.setattr(batched_mod, "_NUMPY_MIN_ROWS", 1)
        without = self._solve_apsp()
        monkeypatch.undo()
        with_np = self._solve_apsp()
        assert without.instance.equals(with_np.instance)
        assert _bytes_of(without.instance) == _bytes_of(with_np.instance)

    def test_numpy_reduce_byte_identical(self, monkeypatch):
        # Force the grouped ufunc reduction onto every (unfused) leaf
        # and check the fixpoint stays byte-identical to codegen.
        if batched_mod._np is None:
            pytest.skip("numpy not installed")
        monkeypatch.setattr(batched_mod, "_NUMPY_MIN_ROWS", 1)
        monkeypatch.setattr(
            BatchedKernel, "_build_fused", lambda self, ir, pre: None
        )
        db = _weighted_db(14, 0.35, seed=11)
        subject = solve(programs.apsp(), db, method="seminaive",
                        engine="batched")
        codegen = solve(programs.apsp(), db, method="seminaive",
                        engine="codegen")
        assert _bytes_of(subject.instance) == _bytes_of(codegen.instance)
        assert _counters(subject) == _counters(codegen)

    def test_rich_values_reject_ufuncs(self, monkeypatch):
        # Lifted reals wrap floats in tagged values: the per-column
        # type scan must turn the ufunc path down and the stdlib fold
        # must still agree with the interpreted engine.
        monkeypatch.setattr(batched_mod, "_NUMPY_MIN_ROWS", 1)
        edges, costs = workloads.fig_2b_bom()
        db = Database(
            pops=LIFTED_REAL,
            relations={"C": {(k,): v for k, v in costs.items()}},
            bool_relations={"E": set(edges)},
        )
        prog = programs.bill_of_material()
        subject = solve(prog, db, engine="batched")
        interpreted = solve(prog, db, engine="interpreted")
        assert subject.instance.equals(interpreted.instance)


# ---------------------------------------------------------------------------
# Hypothesis: batched == codegen == compiled == interpreted over random
# programs (generators shared in spirit with test_codegen).
# ---------------------------------------------------------------------------

_PREDS = ["P0", "P1", "P2", "P3"]

_body_spec = st.one_of(
    st.just(("edb",)),
    st.tuples(st.just("ind"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("cond"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("copy"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("step"), st.integers(min_value=0, max_value=3)),
)

_program_spec = st.lists(
    st.lists(_body_spec, min_size=1, max_size=2),
    min_size=1,
    max_size=4,
)


def _build_program(spec, acyclic: bool) -> Program:
    rules = []
    for i, bodies in enumerate(spec):
        head = _PREDS[i]
        sum_products = []
        for body in bodies:
            kind = body[0]
            if kind == "edb":
                sum_products.append(SumProduct((RelAtom("A", terms(["X"])),)))
            elif kind == "ind":
                sum_products.append(
                    SumProduct(
                        (Indicator(Compare("==", var("X"), Constant(body[1]))),)
                    )
                )
            elif kind == "cond":
                sum_products.append(
                    SumProduct(
                        (RelAtom("A", terms(["X"])),),
                        condition=Compare("!=", var("X"), Constant(body[1])),
                    )
                )
            else:
                j = body[1] % len(spec)
                if acyclic and j >= i:
                    sum_products.append(
                        SumProduct((RelAtom("A", terms(["X"])),))
                    )
                elif kind == "copy":
                    sum_products.append(
                        SumProduct((RelAtom(_PREDS[j], terms(["X"])),))
                    )
                else:
                    sum_products.append(
                        SumProduct(
                            (
                                RelAtom(_PREDS[j], terms(["Z"])),
                                RelAtom("E", terms(["Z", "X"])),
                            )
                        )
                    )
        rules.append(Rule(head, terms(["X"]), tuple(sum_products)))
    return Program(rules=rules, edbs={"A": 1, "E": 2})


def _database(pops, values):
    keys = [(0,), (1,), (2,)]
    return Database(
        pops=pops,
        relations={
            "A": dict(zip(keys, values)),
            "E": {(0, 1): values[0], (1, 2): values[1], (2, 3): values[2]},
        },
    )


class TestBatchedInvariance:
    @settings(max_examples=50, deadline=None)
    @given(_program_spec)
    def test_idempotent_semirings_with_cycles(self, spec):
        for pops, values in (
            (BOOL, [True, True, True]),
            (TROP, [1.0, 2.0, 4.0]),
            (THREE, [1, 0, 1]),
        ):
            prog = _build_program(spec, acyclic=False)
            db = _database(pops, values)
            interpreted = solve(
                prog, db, engine="interpreted", max_iterations=400
            )
            subject = solve(prog, db, engine=ENGINE, max_iterations=400)
            assert subject.instance.equals(interpreted.instance), pops.name
            codegen = solve(prog, db, engine="codegen", max_iterations=400)
            assert _bytes_of(subject.instance) == _bytes_of(
                codegen.instance
            ), pops.name
            if getattr(pops, "supports_minus", False):
                semi = solve(
                    prog,
                    db,
                    method="seminaive",
                    engine=ENGINE,
                    max_iterations=400,
                )
                assert semi.instance.equals(interpreted.instance), pops.name

    @settings(max_examples=30, deadline=None)
    @given(_program_spec)
    def test_lifted_reals_acyclic(self, spec):
        prog = _build_program(spec, acyclic=True)
        db = _database(LIFTED_REAL, [1.0, 2.0, 4.0])
        interpreted = solve(prog, db, engine="interpreted", max_iterations=400)
        subject = solve(prog, db, engine=ENGINE, max_iterations=400)
        assert subject.instance.equals(interpreted.instance)

    @settings(max_examples=20, deadline=None)
    @given(_program_spec)
    def test_counter_parity_random_programs(self, spec):
        prog = _build_program(spec, acyclic=False)
        db = _database(TROP, [1.0, 2.0, 4.0])
        subject = solve(
            prog, db, schedule="monolithic", engine="batched",
            max_iterations=400,
        )
        codegen = solve(
            prog, db, schedule="monolithic", engine="codegen",
            max_iterations=400,
        )
        assert _bytes_of(subject.instance) == _bytes_of(codegen.instance)
        assert _counters(subject) == _counters(codegen)
