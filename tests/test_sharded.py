"""The sharded multi-process engine (``engine_workers=N``).

Covers the full distribution story:

* sharded fixpoints at N ∈ {1, 2, 4} are *byte-identical* to the
  single-process batched/codegen engines — with exact
  ``valuations``/``products`` parity (the match set partitions across
  shards) — on the paper's workloads and on hypothesis-generated
  programs across Boolean / tropical / THREE / lifted-reals spaces;
* the planner's shard-key selection (greedy alignment) and
  cross-shard guard analysis (routed vs broadcast deltas);
* exchange determinism: identical runs ship identical tuple counts in
  identical rounds;
* fault robustness (``DATALOGO_FAULT``): a worker that dies (real
  ``os._exit``), stalls past the heartbeat deadline, or corrupts its
  exchange payload is healed in place — restarted from the master
  state and replayed (``shard_restarts``) or retransmitted once
  (``crc_retransmits``) — with the fixpoint staying byte-identical and
  **no** single-process fallback; only a persistent (``:*``) fault
  walks the demotion ladder down to the warned fallback;
* the free-threaded fallback (``DATALOGO_SHARD_THREADS`` forces the
  thread pool through the same protocol) and the ``solve()``/CLI knob
  validation.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import programs, workloads
from repro.core import (
    Database,
    Program,
    RelAtom,
    Rule,
    ShardedSemiNaiveEvaluator,
    SumProduct,
    broadcast_relations,
    build_sharding_plan,
    select_shard_columns,
    solve,
)
from repro.core.ast import Compare, Constant, terms, var
from repro.core.planner import shard_of
from repro.core.rules import Indicator
from repro.semirings import BOOL, LIFTED_REAL, THREE, TROP
from repro.semirings.base import FunctionRegistry

#: The per-worker engine under test; the CI engine matrix overrides it.
ENGINE = os.environ.get("DATALOGO_ENGINE", "batched")


def _bytes_of(instance) -> str:
    """A byte-exact rendering (repr distinguishes 0.0 from -0.0)."""
    return "|".join(
        "%s:%s"
        % (
            rel,
            sorted(
                (repr(k), repr(v))
                for k, v in instance.support(rel).items()
            ),
        )
        for rel in sorted(instance.relations())
    )


def _weighted_db(n=12, p=0.3, seed=7):
    edges = workloads.random_weighted_digraph(n, p, seed=seed)
    return Database(pops=TROP, relations={"E": dict(edges)})


def _line_db(n=10, pops=TROP):
    return Database(pops=pops, relations={"E": dict(workloads.line_edges(n))})


def _assert_sharded_matches(program, db, workers, functions=None, **kw):
    """solve(engine_workers=N) == solve(engine=ENGINE), byte for byte,
    with exact valuations/products parity."""
    base = solve(
        program, db, method="seminaive", engine=ENGINE,
        functions=functions, **kw
    )
    sharded = solve(
        program, db, method="seminaive", engine=ENGINE,
        functions=functions, engine_workers=workers, **kw
    )
    assert _bytes_of(sharded.instance) == _bytes_of(base.instance)
    assert sharded.steps == base.steps
    assert sharded.stats["valuations"] == base.stats["valuations"]
    assert sharded.stats["products"] == base.stats["products"]
    assert sharded.stats["shard_fallbacks"] == 0
    return sharded


# ---------------------------------------------------------------------------
# Planner: shard-key selection and cross-shard (broadcast) analysis.
# ---------------------------------------------------------------------------


class TestShardPlanner:
    def test_linear_apsp_routes_on_source(self):
        prog = programs.apsp()
        columns = select_shard_columns(prog)
        plan = build_sharding_plan(prog, workers=4)
        # One recursive occurrence per body: the driver is the only
        # reader, so every delta routes to its owner shard.
        assert set(columns) == set(prog.idb_names())
        assert plan.broadcast == frozenset()
        for rel in prog.idb_names():
            assert plan.routed(rel)

    def test_quadratic_tc_broadcasts(self):
        prog = programs.quadratic_transitive_closure()
        plan = build_sharding_plan(prog, workers=4)
        # T(X,Z) ⊗ T(Z,Y): no single column aligns the self-join, so
        # the delta must reach every shard.
        [rel] = list(prog.idb_names())
        assert rel in plan.broadcast
        assert not plan.routed(rel)

    def test_mutual_recursion_aligns_on_join_variable(self):
        # T reads A ⊗ B on Z: alignment lands A on column 1 and B on
        # column 0 (both sharded by Z), so both deltas route.
        rules = [
            Rule(
                "A",
                terms(["X", "Y"]),
                (
                    SumProduct((RelAtom("E", terms(["X", "Y"])),)),
                    SumProduct(
                        (RelAtom("A", terms(["X", "Z"])),
                         RelAtom("B", terms(["Z", "Y"]))),
                    ),
                ),
            ),
            Rule(
                "B",
                terms(["X", "Y"]),
                (
                    SumProduct((RelAtom("E", terms(["X", "Y"])),)),
                    SumProduct(
                        (RelAtom("A", terms(["X", "Z"])),
                         RelAtom("B", terms(["Z", "Y"]))),
                    ),
                ),
            ),
        ]
        prog = Program(rules=rules, edbs={"E": 2})
        columns = select_shard_columns(prog)
        assert columns == {"A": 1, "B": 0}
        assert broadcast_relations(prog, columns) == frozenset()

    def test_self_join_on_shared_column_routes(self):
        # L(X,Z) ⊗ L(Y,Z): both occurrences carry Z at column 1, so a
        # single column *does* align the self-join — routing is sound.
        rules = [
            Rule(
                "L",
                terms(["X", "Y"]),
                (
                    SumProduct((RelAtom("E", terms(["X", "Y"])),)),
                    SumProduct(
                        (RelAtom("L", terms(["X", "Z"])),
                         RelAtom("L", terms(["Y", "Z"]))),
                    ),
                ),
            ),
        ]
        prog = Program(rules=rules, edbs={"E": 2})
        plan = build_sharding_plan(prog, workers=2)
        assert plan.columns == {"L": 1}
        assert plan.broadcast == frozenset()

    def test_misaligned_occurrence_broadcasts(self):
        # Two bodies demand conflicting columns for B (Z rides column
        # 0 in one, column 1 in the other): no assignment aligns both,
        # so neither relation's partial replica can be certified.
        rules = [
            Rule(
                "A",
                terms(["X", "Y"]),
                (
                    SumProduct((RelAtom("E", terms(["X", "Y"])),)),
                    SumProduct(
                        (RelAtom("A", terms(["X", "Z"])),
                         RelAtom("B", terms(["Z", "Y"]))),
                    ),
                    SumProduct(
                        (RelAtom("A", terms(["X", "Z"])),
                         RelAtom("B", terms(["Y", "Z"]))),
                    ),
                ),
            ),
            Rule(
                "B",
                terms(["X", "Y"]),
                (SumProduct((RelAtom("E", terms(["X", "Y"])),)),),
            ),
        ]
        prog = Program(rules=rules, edbs={"E": 2})
        plan = build_sharding_plan(prog, workers=2)
        assert "B" in plan.broadcast
        assert "A" in plan.broadcast

    def test_owner_is_deterministic_and_in_range(self):
        prog = programs.apsp()
        plan = build_sharding_plan(prog, workers=4)
        [rel] = list(prog.idb_names())
        for key in [(0, 1), ("a", "b"), (1.5, None), ((0, 1), 2)]:
            owner = plan.owner(rel, key)
            assert 0 <= owner < 4
            assert owner == plan.owner(rel, key)
        # Ownership keys only the shard column.
        col = plan.columns[rel]
        assert plan.owner(rel, (7, 1)) == plan.owner(rel, (7, 99))
        # Stable across value kinds; out-of-range keys fall back to
        # whole-key hashing instead of raising.
        assert 0 <= plan.owner(rel, ()) < 4
        assert shard_of("x", 3) == shard_of("x", 3)

    def test_single_worker_owns_everything(self):
        prog = programs.apsp()
        plan = build_sharding_plan(prog, workers=1)
        assert plan.owner("T", (3, 4)) == 0


# ---------------------------------------------------------------------------
# Differentials: sharded == batched/codegen, byte for byte.
# ---------------------------------------------------------------------------


class TestShardedDifferentials:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_apsp_trop(self, workers):
        _assert_sharded_matches(programs.apsp(), _weighted_db(), workers)

    @pytest.mark.parametrize("schedule", ["monolithic", "scc", "parallel"])
    def test_apsp_all_schedules(self, schedule):
        _assert_sharded_matches(
            programs.apsp(), _weighted_db(), 2, schedule=schedule
        )

    def test_sssp_routed_delta(self):
        sharded = _assert_sharded_matches(programs.sssp(0), _line_db(12), 2)
        assert sharded.stats["exchange_rounds"] > 0

    def test_layered_sssp_mutual_recursion(self):
        _assert_sharded_matches(programs.layered_sssp(0), _line_db(10), 2)

    def test_quadratic_tc_bool_broadcast(self):
        dag = workloads.random_dag(10, 0.25, seed=8)
        db = Database(pops=BOOL, relations={"E": {e: True for e in dag}})
        _assert_sharded_matches(
            programs.quadratic_transitive_closure(), db, 2
        )

    def test_cyclic_tc_bool(self):
        cyc = workloads.cycle_edges(9)
        db = Database(pops=BOOL, relations={"E": {e: True for e in cyc}})
        _assert_sharded_matches(programs.transitive_closure(), db, 3)

    def test_bill_of_material_lifted_rejected_like_single_process(self):
        # R⊥ has no ⊖: recursive semi-naïve evaluation is rejected, and
        # the sharded engine must surface the *same* validation error
        # instead of spawning a pool that dies on it.
        from repro.core import SemiNaiveError

        edges, costs = workloads.fig_2b_bom()
        db = Database(
            pops=LIFTED_REAL,
            relations={"C": {(k,): v for k, v in costs.items()}},
            bool_relations={"E": set(edges)},
        )
        prog = programs.bill_of_material()
        with pytest.raises(SemiNaiveError):
            solve(prog, db, method="seminaive", engine=ENGINE)
        with pytest.raises(SemiNaiveError):
            solve(
                prog, db, method="seminaive", engine=ENGINE,
                engine_workers=2,
            )

    def test_key_as_value_functions_ship_by_fork(self):
        # FunctionRegistry entries are inherited by the forked workers,
        # never pickled — a lambda would break anything pickle-based.
        registry = FunctionRegistry()
        registry.register("key_to_trop", lambda k: float(k))
        db = Database(
            pops=TROP,
            bool_relations={
                "Length": {("a", "b", 3), ("a", "b", 7), ("a", "c", 2)}
            },
        )
        _assert_sharded_matches(
            programs.shortest_length_from_bool(), db, 2, functions=registry
        )

    def test_workers_one_through_the_pool(self):
        # N=1 still exercises the full worker protocol (exchange,
        # merge) and must be byte-identical, trivially.
        prog = programs.apsp()
        db = _weighted_db()
        base = solve(prog, db, method="seminaive", engine=ENGINE)
        evaluator = ShardedSemiNaiveEvaluator(
            prog, db, engine=ENGINE, workers=1
        )
        result = evaluator.run()
        assert _bytes_of(result.instance) == _bytes_of(base.instance)
        assert result.stats["exchange_rounds"] > 0

    def test_thread_pool_fallback(self, monkeypatch):
        # The nogil path: same protocol over queues, nothing pickled.
        monkeypatch.setenv("DATALOGO_SHARD_THREADS", "1")
        _assert_sharded_matches(programs.apsp(), _weighted_db(), 2)

    def test_exchange_determinism(self):
        prog = programs.apsp()
        db = _weighted_db()
        runs = [
            solve(
                prog, db, method="seminaive", engine=ENGINE,
                engine_workers=2, schedule="monolithic",
            )
            for _ in range(2)
        ]
        assert _bytes_of(runs[0].instance) == _bytes_of(runs[1].instance)
        assert (
            runs[0].stats["exchange_tuples"]
            == runs[1].stats["exchange_tuples"]
        )
        assert (
            runs[0].stats["exchange_rounds"]
            == runs[1].stats["exchange_rounds"]
        )
        assert runs[0].stats["exchange_tuples"] > 0


# ---------------------------------------------------------------------------
# Self-healing fault matrix (DATALOGO_FAULT): a one-shot fault never
# costs more than a restart/retransmit — byte-identical, no fallback.
# ---------------------------------------------------------------------------


class TestShardSelfHealing:
    def _heal_and_match(
        self, monkeypatch, fault, workers=2, deadline=None, **evaluator_kw
    ):
        prog, db = programs.apsp(), _weighted_db()
        base = solve(prog, db, method="seminaive", engine=ENGINE)
        monkeypatch.setenv("DATALOGO_FAULT", fault)
        result = ShardedSemiNaiveEvaluator(
            prog, db, engine=ENGINE, workers=workers, deadline=deadline,
            **evaluator_kw
        ).run()
        assert _bytes_of(result.instance) == _bytes_of(base.instance)
        assert result.steps == base.steps
        assert result.stats["valuations"] == base.stats["valuations"]
        assert result.stats["products"] == base.stats["products"]
        assert result.stats["shard_fallbacks"] == 0
        assert result.stats["shard_stall_fallbacks"] == 0
        assert result.stats["shard_demotions"] == 0
        return result

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("worker", [0, 1])
    @pytest.mark.parametrize("step", [2, 3])
    def test_crash_heals_by_restart(
        self, monkeypatch, workers, worker, step
    ):
        # A real mid-fixpoint process death (os._exit in the child):
        # the coordinator re-forks the worker, restores it from master
        # state, replays the step — and never falls back.
        result = self._heal_and_match(
            monkeypatch, f"crash@{step}:{worker}", workers=workers
        )
        assert result.stats["shard_restarts"] == 1

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("step", [2, 3])
    def test_stall_heals_by_restart(self, monkeypatch, workers, step):
        result = self._heal_and_match(
            monkeypatch, f"stall@{step}:1", workers=workers, deadline=0.4
        )
        assert result.stats["shard_restarts"] == 1

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("step", [2, 3])
    def test_corrupt_heals_by_retransmit(self, monkeypatch, workers, step):
        # A flipped exchange checksum costs one retransmit of the
        # cached clean reply — not even a restart.
        result = self._heal_and_match(
            monkeypatch, f"corrupt@{step}:1", workers=workers
        )
        assert result.stats["crc_retransmits"] == 1
        assert result.stats["shard_restarts"] == 0

    def test_crash_heals_in_thread_mode(self, monkeypatch):
        monkeypatch.setenv("DATALOGO_SHARD_THREADS", "1")
        result = self._heal_and_match(monkeypatch, "crash@2:0")
        assert result.stats["shard_restarts"] == 1

    def test_multi_fault_plan(self, monkeypatch):
        # Independent one-shot faults on different workers/steps all
        # heal within the restart budget.
        result = self._heal_and_match(
            monkeypatch, "crash@2:0,corrupt@3:1", workers=4
        )
        assert result.stats["shard_restarts"] == 1
        assert result.stats["crc_retransmits"] == 1

    def test_crash_through_solve_stays_sharded(self, monkeypatch):
        # The ISSUE acceptance shape: DATALOGO_FAULT kills 1 of 4
        # workers mid-fixpoint, solve() completes byte-identically via
        # worker restart — NOT via single-process fallback.
        prog, db = programs.apsp(), _weighted_db()
        base = solve(prog, db, method="seminaive", engine=ENGINE)
        monkeypatch.setenv("DATALOGO_FAULT", "crash@2:1")
        result = solve(
            prog, db, method="seminaive", engine=ENGINE, engine_workers=4
        )
        assert _bytes_of(result.instance) == _bytes_of(base.instance)
        assert result.stats["shard_restarts"] == 1
        assert result.stats["shard_fallbacks"] == 0


# ---------------------------------------------------------------------------
# Degradation ladder: a fault that survives restarts (generation *)
# demotes the pool, and only below two workers falls back (warned).
# ---------------------------------------------------------------------------


class TestDegradationLadder:
    def _expect_ladder(self, monkeypatch, fault, **evaluator_kw):
        prog, db = programs.apsp(), _weighted_db()
        base = solve(prog, db, method="seminaive", engine=ENGINE)
        monkeypatch.setenv("DATALOGO_FAULT", fault)
        monkeypatch.setenv("DATALOGO_SHARD_RESTARTS", "1")
        with pytest.warns(RuntimeWarning, match="fell back"):
            result = ShardedSemiNaiveEvaluator(
                prog, db, engine=ENGINE, workers=4, **evaluator_kw
            ).run()
        assert _bytes_of(result.instance) == _bytes_of(base.instance)
        assert result.steps == base.steps
        assert result.stats["shard_restarts"] >= 1
        assert result.stats["shard_demotions"] >= 1
        assert result.stats["shard_fallbacks"] == 1
        return result

    def test_persistent_crash_walks_ladder(self, monkeypatch):
        result = self._expect_ladder(monkeypatch, "crash@2:0:*")
        assert result.stats["shard_stall_fallbacks"] == 0

    def test_persistent_stall_counts_stall_fallback(self, monkeypatch):
        # Satellite: stall-deadline fallbacks get their own counter on
        # top of the generic one.
        result = self._expect_ladder(
            monkeypatch, "stall@2:0:*", deadline=0.3
        )
        assert result.stats["shard_stall_fallbacks"] == 1


# ---------------------------------------------------------------------------
# solve()/CLI knob validation.
# ---------------------------------------------------------------------------


class TestShardedValidation:
    def test_requires_seminaive(self):
        with pytest.raises(ValueError, match="seminaive"):
            solve(
                programs.apsp(), _weighted_db(), method="naive",
                engine_workers=2,
            )

    def test_rejects_capture_trace(self):
        with pytest.raises(ValueError, match="iteration chain"):
            solve(
                programs.apsp(), _weighted_db(), method="seminaive",
                engine_workers=2, capture_trace=True,
                schedule="monolithic",
            )

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="engine_workers"):
            solve(
                programs.apsp(), _weighted_db(), method="seminaive",
                engine_workers=0,
            )

    def test_cli_workers_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "prog.dl", "--pops", "trop", "--edb", "db.json",
             "--method", "seminaive", "--workers", "3"]
        )
        assert args.workers == 3


# ---------------------------------------------------------------------------
# Hypothesis: sharded == batched over random recursive programs.
# ---------------------------------------------------------------------------

_PREDS = ["P0", "P1", "P2", "P3"]

_body_spec = st.one_of(
    st.just(("edb",)),
    st.tuples(st.just("ind"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("cond"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("copy"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("step"), st.integers(min_value=0, max_value=3)),
)

_program_spec = st.lists(
    st.lists(_body_spec, min_size=1, max_size=2),
    min_size=1,
    max_size=4,
)


def _build_program(spec, acyclic: bool) -> Program:
    rules = []
    for i, bodies in enumerate(spec):
        head = _PREDS[i]
        sum_products = []
        for body in bodies:
            kind = body[0]
            if kind == "edb":
                sum_products.append(SumProduct((RelAtom("A", terms(["X"])),)))
            elif kind == "ind":
                sum_products.append(
                    SumProduct(
                        (Indicator(Compare("==", var("X"), Constant(body[1]))),)
                    )
                )
            elif kind == "cond":
                sum_products.append(
                    SumProduct(
                        (RelAtom("A", terms(["X"])),),
                        condition=Compare("!=", var("X"), Constant(body[1])),
                    )
                )
            else:
                j = body[1] % len(spec)
                if acyclic and j >= i:
                    sum_products.append(
                        SumProduct((RelAtom("A", terms(["X"])),))
                    )
                elif kind == "copy":
                    sum_products.append(
                        SumProduct((RelAtom(_PREDS[j], terms(["X"])),))
                    )
                else:
                    sum_products.append(
                        SumProduct(
                            (
                                RelAtom(_PREDS[j], terms(["Z"])),
                                RelAtom("E", terms(["Z", "X"])),
                            )
                        )
                    )
        rules.append(Rule(head, terms(["X"]), tuple(sum_products)))
    return Program(rules=rules, edbs={"A": 1, "E": 2})


def _database(pops, values):
    keys = [(0,), (1,), (2,)]
    return Database(
        pops=pops,
        relations={
            "A": dict(zip(keys, values)),
            "E": {(0, 1): values[0], (1, 2): values[1], (2, 3): values[2]},
        },
    )


class TestShardedInvariance:
    @settings(max_examples=12, deadline=None)
    @given(_program_spec, st.sampled_from([2, 4]))
    def test_idempotent_semirings_with_cycles(self, spec, workers):
        for pops, values in (
            (BOOL, [True, True, True]),
            (TROP, [1.0, 2.0, 4.0]),
            (THREE, [1, 0, 1]),
        ):
            if not getattr(pops, "supports_minus", False):
                continue
            prog = _build_program(spec, acyclic=False)
            db = _database(pops, values)
            base = solve(
                prog, db, method="seminaive", engine=ENGINE,
                max_iterations=400,
            )
            sharded = solve(
                prog, db, method="seminaive", engine=ENGINE,
                engine_workers=workers, max_iterations=400,
            )
            assert _bytes_of(sharded.instance) == _bytes_of(
                base.instance
            ), pops.name
            assert sharded.stats["valuations"] == base.stats["valuations"]
            assert sharded.stats["products"] == base.stats["products"]

    @settings(max_examples=8, deadline=None)
    @given(_program_spec)
    def test_lifted_reals_acyclic(self, spec):
        prog = _build_program(spec, acyclic=True)
        db = _database(LIFTED_REAL, [1.0, 2.0, 4.0])
        base = solve(
            prog, db, method="seminaive", engine=ENGINE, max_iterations=400
        )
        sharded = solve(
            prog, db, method="seminaive", engine=ENGINE,
            engine_workers=2, max_iterations=400,
        )
        assert _bytes_of(sharded.instance) == _bytes_of(base.instance)
